"""Legacy setup shim (and optional C-extension build).

The offline environment lacks the ``wheel`` package that modern editable
installs (PEP 660) require, so ``pip install -e .`` falls back to this
classic setuptools entry point.  All real metadata lives in pyproject.toml.

The native replay backend (``repro.trace.engine._native``) is built here
when a C toolchain is present, and skipped -- loudly but non-fatally --
when it is not: the package is pure-python-complete, the extension is an
accelerator tier, and :mod:`repro.trace.engine.native` can also compile
it on demand at import time.  Set ``REPRO_BUILD_NATIVE=0`` to skip the
build attempt entirely.
"""

import os

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """``build_ext`` that degrades to a pure-python install on failure."""

    def run(self):
        try:
            build_ext.run(self)
        except Exception as exc:
            self._skip(exc)

    def build_extension(self, ext):
        try:
            build_ext.build_extension(self, ext)
        except Exception as exc:
            self._skip(exc)

    def _skip(self, exc):
        print(f"WARNING: native replay backend not built ({exc}); "
              f"the numpy and python tiers remain fully functional")


if os.environ.get("REPRO_BUILD_NATIVE", "1") == "0":
    extensions = []
else:
    extensions = [Extension(
        "repro.trace.engine._native",
        sources=["src/repro/trace/engine/_native.c"],
        optional=True,
    )]

setup(ext_modules=extensions,
      cmdclass={"build_ext": optional_build_ext})
