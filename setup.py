"""Legacy setup shim.

The offline environment lacks the ``wheel`` package that modern editable
installs (PEP 660) require, so ``pip install -e .`` falls back to this
classic setuptools entry point.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
