"""Golden-grade equivalence for the fused multi-configuration ladder.

Two layers of pinning:

* engine level -- the fused pass must reproduce the per-size replay's
  golden-style fingerprint on every configuration variant the gate
  admits (the same fingerprint the ``golden_stats.json`` suite uses);
* runner level -- a sweep resolved through the fused path must return
  RunStats equal to the same sweep with ``fused=False``, and rows the
  engine cannot cover (multi-process, instrumented) must route to the
  per-size replay automatically.
"""

import pytest

from repro.core.config import SystemConfig
from repro.experiments import runner
from repro.experiments.runner import (ExperimentProfile, ResultCache,
                                      multiprogramming_sweep)
from repro.simulation import run_simulation
from repro.trace import multiconfig
from repro.trace.engine import (available_backends, native_available,
                                native_unavailable_reason,
                                resolve_backend)
from repro.trace.engine.native import ladder_available
from repro.trace.multiconfig import (fused_ladder_results,
                                     fused_ladder_supported)
from repro.trace.record import ReplayApplication, StreamRecorder, TraceCache
from repro.workloads.multiprog import MultiprogrammingWorkload

from .test_golden_stats import fingerprint

COMPILED = [name for name in available_backends() if name != "python"]

SIZES = (512, 1024, 2048, 4096, 8192)

# The golden VARIANTS the fused gate admits (associativity, private
# organization, directory protocol, and stall-on-writes fall back).
FUSED_VARIANTS = {
    "base": {},
    "mesi": dict(protocol="mesi"),
    "line32": dict(line_size=32),
}

TINY = ExperimentProfile(
    name="tiny", ladder_scale=8,
    barnes_bodies=32, barnes_steps=1,
    mp3d_particles=60, mp3d_steps=1,
    cholesky_n=64,
    multiprog_instructions=3000, multiprog_quantum=1200)


def golden_workload():
    """The exact multiprogramming sizing the golden suite pins."""
    return MultiprogrammingWorkload(
        instructions_per_app=4000, quantum_instructions=1500, scale=8)


def golden_ladder(**extra):
    return [SystemConfig(clusters=1, processors_per_cluster=1,
                         scc_size=size, model_icache=True, **extra)
            for size in SIZES]


@pytest.mark.parametrize("variant", sorted(FUSED_VARIANTS))
def test_fused_fingerprints_match_per_size_replay(variant):
    configs = golden_ladder(**FUSED_VARIANTS[variant])
    assert fused_ladder_supported(configs)
    recorder = StreamRecorder(golden_workload())
    run_simulation(configs[0], recorder)
    streams = recorder.streams
    assert streams is not None
    for config, fused in zip(configs, fused_ladder_results(configs,
                                                           streams)):
        per_size = run_simulation(config,
                                  ReplayApplication(streams, name="mp"))
        assert fingerprint(fused) == fingerprint(per_size)


@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("variant", sorted(FUSED_VARIANTS))
def test_fused_fingerprints_on_every_backend(variant, backend,
                                             monkeypatch):
    """The fingerprint grid above re-run with each compiled backend
    forced through ``$REPRO_ENGINE``, resolution asserted (mirrors
    ``test_backends.py``).  The ladder itself has python and native
    implementations only, so a ``numpy`` request must degrade to the
    python ladder while per-size replay rides the numpy tier -- and a
    ``native`` request must genuinely engage the compiled ladder."""
    monkeypatch.setenv("REPRO_ENGINE", backend)
    assert resolve_backend() == backend
    if backend == "native" and not ladder_available():
        pytest.skip("native extension loaded but predates the ladder "
                    "ABI; python ladder covers it")
    configs = golden_ladder(**FUSED_VARIANTS[variant])
    recorder = StreamRecorder(golden_workload())
    run_simulation(configs[0], recorder)
    streams = recorder.streams
    for config, fused in zip(configs, fused_ladder_results(configs,
                                                           streams)):
        per_size = run_simulation(config,
                                  ReplayApplication(streams, name="mp"))
        assert fingerprint(fused) == fingerprint(per_size)
    expected = "native" if backend == "native" else "python"
    assert multiconfig.LAST_LADDER_ENGINE == expected


def test_native_ladder_present_or_reason():
    """The compiled ladder either engages for real or this machine
    reports *why* not -- a visible skip instead of one silently
    uncovered engine (mirrors ``test_backends
    .test_native_tier_present_or_reason``)."""
    if not native_available():
        reason = native_unavailable_reason()
        assert reason, "unavailable native tier must carry a reason"
        pytest.skip(f"native replay backend unavailable: {reason}")
    if not ladder_available():
        pytest.skip("native extension loaded but predates the ladder "
                    "ABI")
    configs = golden_ladder()
    recorder = StreamRecorder(golden_workload())
    run_simulation(configs[0], recorder)
    fused_ladder_results(configs, recorder.streams, backend="native")
    assert multiconfig.LAST_LADDER_ENGINE == "native"


def test_ladder_backend_knob_degrades_gracefully(monkeypatch):
    """An unavailable native ladder falls back to the python ladder
    with identical results -- never an error, never a wrong answer."""
    import repro.trace.engine as engine_mod
    configs = golden_ladder()
    recorder = StreamRecorder(golden_workload())
    run_simulation(configs[0], recorder)
    streams = recorder.streams
    reference = [fingerprint(r)
                 for r in fused_ladder_results(configs, streams,
                                               backend="python")]
    monkeypatch.setattr(multiconfig, "resolve_backend",
                        lambda request=None, strict=False: "python")
    degraded = [fingerprint(r)
                for r in fused_ladder_results(configs, streams,
                                              backend="native")]
    assert degraded == reference
    assert multiconfig.LAST_LADDER_ENGINE == "python"


def test_sweep_results_identical_with_and_without_fusion(tmp_path):
    trace_cache = TraceCache(tmp_path / "traces")
    sweeps = {}
    for fused in (False, True):
        sweeps[fused] = multiprogramming_sweep(
            TINY, ResultCache(tmp_path / f"results-{fused}"),
            ladder=(32768, 65536, 131072, 262144), procs=(1,),
            instrument=False, trace_cache=trace_cache, fused=fused)
    assert sweeps[True] == sweeps[False]
    assert len(sweeps[True]) == 4


def test_uniprocessor_row_uses_fused_engine(tmp_path, monkeypatch):
    calls = []
    real = runner.fused_ladder_results

    def spy(configs, streams, *args, **kwargs):
        calls.append(len(configs))
        return real(configs, streams, *args, **kwargs)

    monkeypatch.setattr(runner, "fused_ladder_results", spy)
    multiprogramming_sweep(
        TINY, ResultCache(tmp_path / "results"),
        ladder=(32768, 65536, 131072), procs=(1,),
        instrument=False, trace_cache=TraceCache(tmp_path / "traces"))
    # One fused pass covering the rungs left after the recording run.
    assert calls == [2]


def test_multiprocess_row_routes_to_per_size_replay(tmp_path, monkeypatch):
    """A deterministic-stream parallel row replays through the trace
    cache but must never enter the fused engine (interleave order and
    coherence are processor-count-dependent)."""

    def forbidden(*args, **kwargs):
        raise AssertionError("fused engine used on a parallel row")

    monkeypatch.setattr(runner, "fused_ladder_results", forbidden)

    class DeterministicMultiprog(MultiprogrammingWorkload):
        deterministic_stream = True

    profile = TINY
    monkeypatch.setattr(
        ExperimentProfile, "multiprogramming",
        lambda self: DeterministicMultiprog(
            instructions_per_app=profile.multiprog_instructions,
            quantum_instructions=profile.multiprog_quantum,
            scale=profile.ladder_scale))
    replays = []
    real_replay = runner.ReplayApplication

    class SpyReplay(real_replay):
        def __init__(self, streams, name="replay"):
            replays.append(name)
            super().__init__(streams, name=name)

    monkeypatch.setattr(runner, "ReplayApplication", SpyReplay)
    sweep = multiprogramming_sweep(
        profile, ResultCache(tmp_path / "results"),
        ladder=(32768, 65536, 131072), procs=(2,),
        instrument=False, trace_cache=TraceCache(tmp_path / "traces"))
    assert len(sweep) == 3
    # Two rungs after the recording run, each via per-size replay.
    assert len(replays) == 2


def test_instrumented_row_routes_to_per_size_replay(tmp_path, monkeypatch):
    """Instrumented sweeps need the probe attached, which the fused
    engine cannot provide -- they must keep the per-size path."""

    def forbidden(*args, **kwargs):
        raise AssertionError("fused engine used on an instrumented row")

    monkeypatch.setattr(runner, "fused_ladder_results", forbidden)
    sweep = multiprogramming_sweep(
        TINY, ResultCache(tmp_path / "results"),
        ladder=(32768, 65536), procs=(1,),
        instrument=True, trace_cache=TraceCache(tmp_path / "traces"))
    assert len(sweep) == 2
    assert all(stats.instrument is not None for stats in sweep.values())
