"""Golden-equivalence suite for the packed trace machinery.

``golden_stats.json`` holds statistics fingerprints captured from the
pre-packed-encoding tree (every event an object, every generator resumed
per event).  These tests re-run the same workloads on the current tree --
packed fast path, event-object path, and instrumented runs -- and demand
bit-identical statistics.  Any scheduling, protocol, or accounting drift
introduced by a fast-path change fails here first.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import SystemConfig
from repro.instrument import InstrumentationProbe
from repro.simulation import run_simulation
from repro.workloads.barnes_hut import BarnesHut
from repro.workloads.cholesky import Cholesky
from repro.workloads.mp3d import MP3D
from repro.workloads.multiprog import MultiprogrammingWorkload

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_stats.json").read_text())

WORKLOADS = {
    "barnes-hut": lambda: BarnesHut(n_bodies=64, steps=1),
    "mp3d": lambda: MP3D(n_particles=120, steps=2),
    "cholesky": lambda: Cholesky(n=96),
    "multiprogramming": lambda: MultiprogrammingWorkload(
        instructions_per_app=4000, quantum_instructions=1500, scale=8),
}

VARIANTS = {
    "mesi": dict(protocol="mesi"),
    "line32": dict(line_size=32),
    "assoc2": dict(associativity=2),
    "private": dict(cluster_organization="private"),
    "directory": dict(inter_cluster="directory"),
    "stallw": dict(stall_on_writes=True),
}


def fingerprint(result):
    stats = result.stats
    total = stats.total_scc
    return {
        "execution_time": stats.execution_time,
        "events": result.events_processed,
        "reads": total.reads,
        "writes": total.writes,
        "read_misses": total.read_misses,
        "write_misses": total.write_misses,
        "invalidations": stats.total_invalidations,
        "upgrades": total.upgrades,
        "evictions": total.evictions,
        "busy": sum(p.busy_cycles for p in stats.processors),
        "memory_stall": sum(p.memory_stall_cycles
                            for p in stats.processors),
        "sync_stall": sum(p.sync_stall_cycles for p in stats.processors),
    }


def run_key(key, packed=True):
    """Reproduce the run a golden key describes on the current tree."""
    parts = key.split("|")
    name, procs, scc = parts[0], int(parts[1][1:]), int(parts[2][1:])
    tail = parts[3] if len(parts) > 3 else None
    clusters = 1 if name == "multiprogramming" else 4
    extra = VARIANTS.get(tail, {})
    config = SystemConfig(clusters=clusters, processors_per_cluster=procs,
                          scc_size=scc,
                          model_icache=(name == "multiprogramming"),
                          **extra)
    workload = WORKLOADS[name]()
    workload.packed = packed
    probe = (InstrumentationProbe(bin_width=512, record_events=False)
             if tail == "instrumented" else None)
    return run_simulation(config, workload, instrumentation=probe)


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_packed_path_matches_golden(key):
    """Every grid point, instrumented run, and configuration variant
    reproduces the pre-packed statistics exactly."""
    assert fingerprint(run_key(key)) == GOLDEN[key]


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_event_object_path_matches_golden(name):
    """``packed=False`` forces the one-object-per-event generators; the
    statistics must still equal the same golden entry."""
    key = f"{name}|p2|s2048"
    assert fingerprint(run_key(key, packed=False)) == GOLDEN[key]
