"""Golden-equivalence of every packed replay backend.

The golden suite (:mod:`tests.equivalence.test_golden_stats`) pins the
python fast path against pre-packed-encoding fingerprints.  This module
closes the loop for the compiled tiers: every *available* backend
(numpy, and native when a toolchain is present) re-runs the full golden
grid with ``backend=`` forced and must reproduce the same fingerprints
bit for bit.  A backend that silently degraded to python would pass
trivially, so the resolution is asserted too.
"""

import pytest

from repro.trace.engine import (available_backends, native_available,
                                native_unavailable_reason,
                                resolve_backend)

from .test_golden_stats import GOLDEN, fingerprint, run_key

COMPILED = [name for name in available_backends() if name != "python"]


@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_backend_matches_golden(key, backend, monkeypatch):
    """Each compiled backend reproduces every golden fingerprint."""
    monkeypatch.setenv("REPRO_ENGINE", backend)
    assert resolve_backend() == backend
    assert fingerprint(run_key(key)) == GOLDEN[key]


def test_native_tier_present_or_reason():
    """The native tier either engages for real or reports *why* not.

    On machines without a C toolchain this skips -- visibly, with the
    loader's reason -- instead of letting the golden matrix above pass
    while silently covering one backend fewer.
    """
    if not native_available():
        reason = native_unavailable_reason()
        assert reason, "unavailable native tier must carry a reason"
        assert resolve_backend("native") in ("numpy", "python")
        pytest.skip(f"native replay backend unavailable: {reason}")
    assert resolve_backend("native") == "native"
    key = "multiprogramming|p1|s1024"
    assert fingerprint(run_key(key)) == GOLDEN[key]
