"""Tests for the command-line interface."""

import argparse

import pytest

from repro.cli import main, parse_size


class TestParseSize:
    def test_kb(self):
        assert parse_size("8KB") == 8192
        assert parse_size("8kb") == 8192
        assert parse_size(" 4 KB ") == 4096

    def test_bytes(self):
        assert parse_size("512B") == 512
        assert parse_size("4096") == 4096
        assert parse_size("512b") == 512

    def test_mb(self):
        assert parse_size("1MB") == 1024 * 1024
        assert parse_size("2mb") == 2 * 1024 * 1024
        assert parse_size("1Mb") == 1024 * 1024

    def test_mixed_case_kb(self):
        assert parse_size("8Kb") == 8192
        assert parse_size("8kB") == 8192

    def test_rejects_garbage(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_size("lots")

    def test_error_message_lists_accepted_forms(self):
        with pytest.raises(argparse.ArgumentTypeError) as err:
            parse_size("8GB")
        message = str(err.value)
        for form in ("4096", "512B", "8KB", "1MB"):
            assert form in message


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "barnes-hut" in out
        assert "table6" in out

    def test_simulate(self, capsys):
        code = main(["simulate", "mp3d", "--procs", "1",
                     "--scc", "1KB", "--clusters", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "read miss rate" in out

    def test_simulate_private_organization(self, capsys):
        code = main(["simulate", "mp3d", "--procs", "2", "--scc", "2KB",
                     "--organization", "private"])
        assert code == 0
        assert "private" in capsys.readouterr().out

    def test_report_table5(self, capsys):
        assert main(["report", "table5"]) == 0
        assert "1.06" in capsys.readouterr().out

    def test_report_costs(self, capsys):
        assert main(["report", "costs"]) == 0
        assert "204" in capsys.readouterr().out

    def test_profile(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        code = main(["profile", "mp3d", "--procs", "2", "--scc", "2KB",
                     "--trace-out", str(trace), "--timeline-bins", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bus utilization" in out
        assert "trace written" in out
        import json
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]

    def test_profile_without_trace_out(self, capsys):
        assert main(["profile", "mp3d", "--procs", "1",
                     "--scc", "2KB"]) == 0
        out = capsys.readouterr().out
        assert "bus utilization" in out
        assert "trace written" not in out

    def test_fuzz_clean_campaign(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REPRO_DIR", str(tmp_path))
        assert main(["fuzz", "--seed", "0", "--budget", "15"]) == 0
        out = capsys.readouterr().out
        assert "15 clean" in out
        assert "0 diverged" in out

    def test_fuzz_divergence_exit_code(self, capsys, tmp_path,
                                       monkeypatch):
        from repro.core.coherence import CoherenceController
        monkeypatch.setenv("REPRO_REPRO_DIR", str(tmp_path))
        original = CoherenceController.read_miss

        def patched(self, scc, line, start):
            return original(self, scc, line, start) + 1

        monkeypatch.setattr(CoherenceController, "read_miss", patched)
        assert main(["fuzz", "--seed", "0", "--budget", "5",
                     "--no-shrink"]) == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out or "diverged" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "linpack"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestSweepAndReportPaths:
    @pytest.fixture
    def tiny_profile(self, monkeypatch, tmp_path):
        """Register a minuscule profile and point the cache at tmp."""
        from repro.experiments.runner import PROFILES, ExperimentProfile
        profile = ExperimentProfile(
            name="tiny", ladder_scale=8,
            barnes_bodies=24, barnes_steps=1,
            mp3d_particles=40, mp3d_steps=1,
            cholesky_n=48,
            multiprog_instructions=1500, multiprog_quantum=500)
        monkeypatch.setitem(PROFILES, "tiny", profile)
        monkeypatch.setenv("REPRO_PROFILE", "tiny")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_SESSION_DIR",
                           str(tmp_path / "sessions"))
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
        return profile

    def test_sweep_parallel(self, capsys, tiny_profile):
        assert main(["sweep", "mp3d"]) == 0
        out = capsys.readouterr().out
        assert "normalized execution time" in out
        assert "speedups" in out

    def test_sweep_jobs_flag(self, capsys, tiny_profile):
        assert main(["sweep", "mp3d", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "normalized execution time" in out

    def test_sweep_prints_progress_and_summary(self, capsys,
                                               tiny_profile):
        assert main(["sweep", "mp3d", "--procs", "1",
                     "--ladder", "4KB,8KB"]) == 0
        out = capsys.readouterr().out
        assert "[1/2]" in out and "[2/2]" in out
        assert "points: 2 total" in out
        # A narrowed grid lacks the paper figures' normalization base,
        # so the raw per-point table is printed instead.
        assert "sweep points" in out

    def test_sweep_resume_restores_journal(self, capsys, tiny_profile):
        args = ["sweep", "mp3d", "--procs", "1", "--ladder", "4KB,8KB"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "2 journaled" in out

    def test_sweep_quarantine_exit_code(self, capsys, monkeypatch,
                                        tiny_profile):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "1:4096:raise")
        args = ["sweep", "mp3d", "--procs", "1", "--ladder", "4KB,8KB",
                "--retries", "1", "--backoff", "0"]
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "QUARANTINED 1 point(s):" in out
        assert "injected fault" in out
        assert "--resume" in out
        assert "1 retries" in out
        # With the fault gone, --resume recomputes only the poisoned
        # point and the sweep completes.
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "1 journaled" in out
        assert "0 quarantined" in out

    def test_report_table3(self, capsys, tiny_profile):
        assert main(["report", "table3"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out


class TestBench:
    def test_bench_point_writes_json(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        assert main(["bench", "--repeat", "1", "--scenario", "point",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "packed" in out
        assert "speedup" in out
        import json
        payload = json.loads(out_path.read_text())
        point = payload["quick_barnes_hut"]
        assert point["events"] > 0
        assert point["packed_s"] > 0
        assert point["generator_s"] > 0


class TestOptimizeCommand:
    @pytest.fixture
    def tiny_env(self, monkeypatch, tmp_path):
        from repro.experiments.runner import PROFILES, ExperimentProfile
        profile = ExperimentProfile(
            name="tiny", ladder_scale=8,
            barnes_bodies=24, barnes_steps=1,
            mp3d_particles=40, mp3d_steps=1,
            cholesky_n=48,
            multiprog_instructions=1500, multiprog_quantum=500)
        monkeypatch.setitem(PROFILES, "tiny", profile)
        monkeypatch.setenv("REPRO_PROFILE", "tiny")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_SESSION_DIR",
                           str(tmp_path / "sessions"))
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
        return profile

    def test_optimize_rediscovers_recommendations(self, capsys,
                                                  tiny_env):
        assert main(["optimize", "--seed", "0", "--generations", "1",
                     "--population", "4", "--promote", "2"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "2p/32KB" in out
        assert "REDISCOVERS" in out
        assert "Funnel budget" in out

    def test_optimize_rejects_unknown_benchmark(self, capsys, tiny_env):
        assert main(["optimize", "--benchmarks", "linpack"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_optimize_budget_flags_flow_through(self, capsys, tiny_env):
        assert main(["optimize", "--seed", "0", "--generations", "1",
                     "--population", "4", "--promote", "2",
                     "--no-knobs", "--budget-fused", "64",
                     "--ladder", "32KB,64KB,128KB,512KB"]) == 0
        out = capsys.readouterr().out
        assert "/ 64" in out
