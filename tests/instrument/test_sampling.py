"""Unit tests for the bounded, deterministically-decimated event log."""

import pytest

from repro.instrument.sampling import EventLog


class TestEventLog:
    def test_keeps_everything_under_capacity(self):
        log = EventLog(capacity=100)
        for i in range(50):
            log.append(("bus", i))
        assert len(log) == 50
        assert log.dropped == 0
        assert list(log) == [("bus", i) for i in range(50)]

    def test_decimates_at_capacity(self):
        log = EventLog(capacity=100)
        for i in range(100):
            log.append(("bus", i))
        # Filling triggers one halving: every second retained event went.
        assert len(log) == 50
        assert log.stride == 2
        assert log.offered == 100
        assert log.dropped == 50

    def test_survivors_stay_uniformly_spread(self):
        log = EventLog(capacity=100)
        for i in range(1000):
            log.append(("bus", i))
        timestamps = [event[1] for event in log]
        assert timestamps == sorted(timestamps)
        # After decimation the kept events are every stride-th offered one.
        assert all(t % log.stride == 0 for t in timestamps)
        assert timestamps[0] == 0
        assert timestamps[-1] >= 1000 - log.stride

    def test_determinism(self):
        a, b = EventLog(capacity=64), EventLog(capacity=64)
        for i in range(5000):
            a.append(("x", i))
            b.append(("x", i))
        assert list(a) == list(b)
        assert a.stride == b.stride

    def test_never_exceeds_capacity(self):
        log = EventLog(capacity=32)
        for i in range(10_000):
            log.append(("x", i))
            assert len(log) <= 32

    def test_of_kind(self):
        log = EventLog(capacity=100)
        log.append(("bus", 1))
        log.append(("bank", 2))
        log.append(("bus", 3))
        assert log.of_kind("bus") == [("bus", 1), ("bus", 3)]
        assert log.of_kind("wb") == []

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            EventLog(capacity=1)
