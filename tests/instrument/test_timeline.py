"""Unit tests for interval-binned timelines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.instrument.timeline import Timeline


class TestRecording:
    def test_span_inside_one_bin(self):
        tl = Timeline(bin_width=100)
        tl.add_span(10, 40)
        assert tl.series() == [30.0]

    def test_span_split_across_bins(self):
        tl = Timeline(bin_width=100)
        tl.add_span(50, 250)
        assert tl.series() == [50.0, 100.0, 50.0]

    def test_span_on_bin_boundary(self):
        tl = Timeline(bin_width=100)
        tl.add_span(100, 200)
        assert tl.series() == [0.0, 100.0]

    def test_empty_span_ignored(self):
        tl = Timeline(bin_width=100)
        tl.add_span(40, 40)
        tl.add_span(40, 10)
        assert tl.series() == []

    def test_weighted_span(self):
        tl = Timeline(bin_width=10)
        tl.add_span(0, 10, weight=3.0)
        assert tl.series() == [30.0]

    def test_add_at_accumulates(self):
        tl = Timeline(bin_width=10)
        tl.add_at(25, 2)
        tl.add_at(29, 3)
        assert tl.series() == [0.0, 0.0, 5.0]

    def test_max_mode_keeps_high_water(self):
        tl = Timeline(bin_width=10, mode="max")
        tl.add_sample(5, 2)
        tl.add_sample(7, 7)
        tl.add_sample(9, 3)
        assert tl.series() == [7.0]

    def test_sum_mode_sample_accumulates(self):
        tl = Timeline(bin_width=10, mode="sum")
        tl.add_sample(5, 2)
        tl.add_sample(7, 3)
        assert tl.series() == [5.0]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Timeline(bin_width=0)
        with pytest.raises(ValueError):
            Timeline(bin_width=10, mode="median")


class TestReading:
    def test_utilization_series(self):
        tl = Timeline(bin_width=100)
        tl.add_span(0, 50)
        tl.add_span(100, 200)
        assert tl.utilization_series() == [0.5, 1.0]

    def test_peak_total_mean(self):
        tl = Timeline(bin_width=10)
        tl.add_span(0, 10)
        tl.add_span(20, 25)
        assert tl.peak() == 10.0
        assert tl.total() == 15.0
        assert tl.mean() == pytest.approx(5.0)

    def test_empty_statistics(self):
        tl = Timeline(bin_width=10)
        assert tl.peak() == 0.0
        assert tl.total() == 0.0
        assert tl.mean() == 0.0
        assert len(tl) == 0


class TestRebinning:
    def test_sum_bins_merge_by_addition(self):
        tl = Timeline(bin_width=10)
        for start in range(0, 80, 10):
            tl.add_span(start, start + 5)
        merged = tl.rebinned(4)
        assert merged.bin_width == 20
        assert merged.series() == [10.0, 10.0, 10.0, 10.0]

    def test_max_bins_merge_by_maximum(self):
        tl = Timeline(bin_width=10, mode="max")
        tl.add_sample(5, 3)
        tl.add_sample(15, 9)
        tl.add_sample(25, 1)
        tl.add_sample(35, 4)
        merged = tl.rebinned(2)
        assert merged.series() == [9.0, 4.0]

    def test_rebin_preserves_total_in_sum_mode(self):
        tl = Timeline(bin_width=7)
        tl.add_span(3, 200)
        assert tl.rebinned(3).total() == tl.total()

    def test_rebin_never_exceeds_target(self):
        tl = Timeline(bin_width=1)
        tl.add_span(0, 1000)
        assert len(tl.rebinned(64)) <= 64

    def test_rebin_to_more_bins_than_exist_is_identity(self):
        tl = Timeline(bin_width=10)
        tl.add_span(0, 30)
        merged = tl.rebinned(100)
        assert merged.bin_width == 10
        assert merged.series() == tl.series()

    def test_rebin_empty(self):
        assert Timeline(bin_width=10).rebinned(4).series() == []

    def test_rebin_rejects_zero(self):
        with pytest.raises(ValueError):
            Timeline(bin_width=10).rebinned(0)


class TestSerialization:
    def test_round_trip(self):
        tl = Timeline(bin_width=10, mode="max")
        tl.add_sample(5, 3)
        tl.add_sample(25, 8)
        clone = Timeline.from_dict(tl.as_dict())
        assert clone.bin_width == tl.bin_width
        assert clone.mode == tl.mode
        assert clone.series() == tl.series()


class TestTimelineProperties:
    @given(spans=st.lists(st.tuples(st.integers(0, 10_000),
                                    st.integers(1, 500)),
                          min_size=1, max_size=50),
           bin_width=st.integers(1, 1000))
    @settings(max_examples=50, deadline=None)
    def test_total_mass_is_conserved(self, spans, bin_width):
        """add_span distributes exactly (end - start) cycles of mass,
        no matter how spans straddle bin boundaries."""
        tl = Timeline(bin_width=bin_width)
        expected = 0
        for start, length in spans:
            tl.add_span(start, start + length)
            expected += length
        assert tl.total() == pytest.approx(expected)

    @given(spans=st.lists(st.tuples(st.integers(0, 5_000),
                                    st.integers(1, 300)),
                          min_size=1, max_size=30),
           bin_width=st.integers(1, 500),
           n_bins=st.integers(1, 40))
    @settings(max_examples=50, deadline=None)
    def test_rebin_conserves_mass_and_respects_cap(self, spans, bin_width,
                                                   n_bins):
        tl = Timeline(bin_width=bin_width)
        for start, length in spans:
            tl.add_span(start, start + length)
        merged = tl.rebinned(n_bins)
        assert merged.total() == pytest.approx(tl.total())
        assert len(merged) <= max(n_bins, 1)
        assert merged.bin_width % bin_width == 0
