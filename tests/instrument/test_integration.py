"""End-to-end instrumentation: the probe threaded through a full
simulation reproduces the paper's bus-saturation story (Section 3.1.2)."""

import pytest

from repro.core.config import KB, SystemConfig
from repro.instrument import InstrumentationProbe
from repro.simulation import run_simulation
from repro.workloads.barnes_hut import BarnesHut
from repro.workloads.mp3d import MP3D


def _mp3d_peak_utilization(procs_per_cluster, scc_size):
    config = SystemConfig.paper_parallel(
        processors_per_cluster=procs_per_cluster, scc_size=scc_size)
    probe = InstrumentationProbe(bin_width=512, record_events=False)
    result = run_simulation(config, MP3D(n_particles=300, steps=2),
                            instrumentation=probe)
    assert result.instrumentation is probe
    return probe.peak_bus_utilization()


class TestBusSaturation:
    def test_small_scc_many_procs_saturates_the_bus(self):
        """The acceptance check from the issue: MP3D on 8 processors per
        cluster with 4 KB SCCs must drive the inter-cluster bus to a
        strictly higher utilization peak than 2 processors with 64 KB
        SCCs (invalidation traffic + capacity misses, Section 3.1.2)."""
        hot = _mp3d_peak_utilization(8, 4 * KB)
        cool = _mp3d_peak_utilization(2, 64 * KB)
        assert 0.0 <= cool <= 1.0
        assert 0.0 < hot <= 1.0
        assert hot > cool


class TestProbeThreading:
    def test_uninstrumented_result_has_no_probe(self):
        config = SystemConfig.paper_parallel(processors_per_cluster=2,
                                             scc_size=8 * KB)
        result = run_simulation(config, BarnesHut(n_bodies=48, steps=1))
        assert result.instrumentation is None

    def test_probe_sees_the_whole_machine(self):
        config = SystemConfig.paper_parallel(processors_per_cluster=2,
                                             scc_size=8 * KB)
        probe = InstrumentationProbe(bin_width=256)
        result = run_simulation(config, BarnesHut(n_bodies=48, steps=1),
                                instrumentation=probe)
        registry = probe.registry
        assert probe.execution_time == result.execution_time
        assert registry.counters["bus_transactions"] > 0
        assert registry.counters["bank_accesses"] > 0
        # Every processor shows up with a busy timeline.
        for proc in range(config.total_processors):
            assert registry.timeline(f"proc{proc}.busy").total() > 0

    def test_probe_busy_cycles_match_bus_counters(self):
        """The probe's view must agree with the bus's own counters."""
        config = SystemConfig.paper_parallel(processors_per_cluster=2,
                                             scc_size=8 * KB)
        probe = InstrumentationProbe(bin_width=256)
        run_simulation(config, MP3D(n_particles=100, steps=1),
                       instrumentation=probe)
        registry = probe.registry
        assert registry.timeline("bus.occupancy").total() \
            == pytest.approx(registry.counters["bus_busy_cycles"])

    def test_private_organization_is_probed_too(self):
        config = SystemConfig.paper_parallel(
            processors_per_cluster=2,
            scc_size=8 * KB).with_updates(cluster_organization="private")
        probe = InstrumentationProbe(bin_width=256)
        run_simulation(config, BarnesHut(n_bodies=48, steps=1),
                       instrumentation=probe)
        digest = probe.summary()
        assert digest["bus_transactions"] > 0
        assert "bus_peak_utilization" in digest
