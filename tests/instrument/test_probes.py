"""Tests for the probe API, the metrics registry, and the wiring that
feeds them from the simulator's contended components."""

import pytest

from repro.core.bus import SnoopyBus
from repro.core.interconnect import BankInterconnect
from repro.instrument import NULL_PROBE, InstrumentationProbe, NullProbe
from repro.instrument.registry import MetricsRegistry


class TestNullProbe:
    def test_disabled_and_silent(self):
        probe = NullProbe()
        assert probe.enabled is False
        # Every callback is a no-op; none may raise.
        probe.bus_acquire("bus", 0, 0, 4)
        probe.bank_access(0, 1, 5, 6, 1)
        probe.write_buffer(0, 1, 5, 2, 0)
        probe.cache_access(0, 3, True, False, 0, 20)
        probe.invalidation(0, 3, 2, 7)
        probe.proc_busy(0, 0, 10)
        probe.proc_stall(0, "memory", 10, 30)

    def test_singleton_is_default_everywhere(self):
        assert SnoopyBus().probe is NULL_PROBE
        assert BankInterconnect(num_banks=2).probe is NULL_PROBE

    def test_instrumentation_probe_is_a_null_probe(self):
        """Duck-typing contract: the real probe substitutes anywhere the
        null one is accepted."""
        assert isinstance(InstrumentationProbe(), NullProbe)
        assert InstrumentationProbe().enabled is True


class TestBusProbe:
    def test_bus_emits_grants(self):
        probe = InstrumentationProbe(bin_width=100)
        bus = SnoopyBus(probe=probe, name="inter-cluster")
        bus.acquire(now=0, occupancy=40, latency=100)
        bus.acquire(now=10, occupancy=40, latency=100)
        registry = probe.registry
        assert registry.counters["bus_transactions"] == 2
        assert registry.counters["bus_busy_cycles"] == 80
        # Second grant waited 30 cycles for the first's occupancy.
        assert registry.counters["bus_wait_cycles"] == 30
        assert registry.timeline("bus.occupancy").total() == 80
        assert probe.events.of_kind("bus") == [
            ("bus", 0, 40, 0, "inter-cluster"),
            ("bus", 40, 40, 30, "inter-cluster")]

    def test_bus_utilization_fraction(self):
        probe = InstrumentationProbe(bin_width=100)
        bus = SnoopyBus(probe=probe)
        bus.acquire(now=0, occupancy=50, latency=10)
        assert probe.bus_utilization() == [0.5]
        assert probe.peak_bus_utilization() == 0.5

    def test_zero_elapsed_utilization_is_zero(self):
        """Regression guard: the bus's own utilization() must not divide
        by a zero horizon, and an unprobed bus stays consistent with a
        probed one."""
        bus = SnoopyBus()
        assert bus.utilization(0) == 0.0
        bus.acquire(0, 20, 100)
        assert bus.utilization(0) == 0.0
        assert bus.utilization(40) == pytest.approx(0.5)


class TestBankProbes:
    def test_conflict_wait_lands_in_timeline(self):
        probe = InstrumentationProbe(bin_width=100)
        icn = BankInterconnect(num_banks=2, probe=probe, cluster_id=3)
        icn.access(0, now=10)
        icn.access(0, now=10)  # same bank, same cycle: 1-cycle conflict
        registry = probe.registry
        assert registry.counters["bank_accesses"] == 2
        assert registry.counters["bank_conflict_events"] == 1
        assert registry.timeline("cluster3.bank0.conflict").total() == 1
        assert probe.events.of_kind("bank") == [("bank", 10, 1, 3, 0)]

    def test_conflict_free_accesses_record_no_conflict(self):
        probe = InstrumentationProbe(bin_width=100)
        icn = BankInterconnect(num_banks=2, probe=probe)
        icn.access(0, now=0)
        icn.access(1, now=0)
        assert "bank_conflict_events" not in probe.registry.counters
        assert probe.events.of_kind("bank") == []

    def test_write_buffer_stall_accounting(self):
        """A full write buffer stalls the processor until the oldest
        store drains; the probe sees the stall and the interconnect's
        own counter agrees with it."""
        probe = InstrumentationProbe(bin_width=100)
        icn = BankInterconnect(num_banks=1, write_buffer_depth=2,
                               probe=probe, cluster_id=0)
        icn.reserve_write_slot(0, now=0, retire_time=50)
        icn.reserve_write_slot(0, now=0, retire_time=60)
        stall = icn.reserve_write_slot(0, now=0, retire_time=70)
        assert stall == 50  # waited for the oldest entry
        assert icn.write_stall_cycles == 50
        registry = probe.registry
        assert registry.counters["write_buffer_stalls"] == 1
        assert registry.counters["write_buffer_stall_cycles"] == 50
        # Depth samples feed the high-water timeline (max mode).
        depth = registry.timeline("cluster0.write_buffer")
        assert depth.mode == "max"
        assert depth.peak() == 2
        stalls = probe.events.of_kind("wb")
        assert len(stalls) == 1
        assert stalls[0][2] == 50  # stall cycles rides in the event

    def test_unstalled_writes_record_depth_only(self):
        probe = InstrumentationProbe(bin_width=100)
        icn = BankInterconnect(num_banks=1, write_buffer_depth=4,
                               probe=probe)
        icn.reserve_write_slot(0, now=0, retire_time=50)
        assert "write_buffer_stalls" not in probe.registry.counters
        assert probe.registry.timeline("cluster0.write_buffer").peak() == 1


class TestProcessorProbe:
    def test_busy_and_stall_spans(self):
        probe = InstrumentationProbe(bin_width=100)
        probe.proc_busy(2, 0, 60)
        probe.proc_stall(2, "memory", 60, 100)
        probe.proc_stall(2, "sync", 100, 150)
        registry = probe.registry
        assert registry.timeline("proc2.busy").total() == 60
        assert registry.timeline("proc2.memory").total() == 40
        assert registry.timeline("proc2.sync").total() == 50

    def test_degenerate_spans_ignored(self):
        probe = InstrumentationProbe(bin_width=100)
        probe.proc_busy(0, 10, 0)
        probe.proc_stall(0, "memory", 10, 10)
        assert set(probe.registry.timelines) == {
            "bus.occupancy", "bus.wait", "bus.invalidations"}


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.count("x")
        registry.count("x", 4)
        assert registry.counters["x"] == 5

    def test_timeline_created_once(self):
        registry = MetricsRegistry(bin_width=64)
        first = registry.timeline("a", mode="max")
        assert registry.timeline("a") is first
        assert first.bin_width == 64

    def test_matching_and_merged(self):
        registry = MetricsRegistry(bin_width=10)
        registry.timeline("cluster0.bank0.conflict").add_span(0, 5)
        registry.timeline("cluster0.bank1.conflict").add_span(10, 18)
        registry.timeline("cluster1.bank0.conflict").add_span(0, 3)
        names = [name for name, _tl in registry.matching("cluster0.bank")]
        assert names == ["cluster0.bank0.conflict",
                         "cluster0.bank1.conflict"]
        merged = registry.merged("cluster0.bank")
        assert merged.series() == [5.0, 8.0]

    def test_merged_max_mode(self):
        registry = MetricsRegistry(bin_width=10)
        registry.timeline("cluster0.write_buffer",
                          mode="max").add_sample(5, 3)
        registry.timeline("cluster1.write_buffer",
                          mode="max").add_sample(5, 7)
        assert registry.merged("cluster").series() == [7.0]

    def test_merged_unknown_prefix_is_empty(self):
        assert MetricsRegistry().merged("nope").series() == []

    def test_summary_digest(self):
        registry = MetricsRegistry(bin_width=100)
        registry.count("bus_transactions", 3)
        registry.timeline("bus.occupancy").add_span(0, 50)
        registry.timeline("cluster0.bank0.conflict").add_span(0, 7)
        registry.timeline("cluster0.write_buffer",
                          mode="max").add_sample(0, 4)
        digest = registry.summary()
        assert digest["bus_transactions"] == 3
        assert digest["bus_peak_utilization"] == 0.5
        assert digest["bank_conflict_cycles"] == 7
        assert digest["write_buffer_peak_depth"] == 4

    def test_round_trip(self):
        registry = MetricsRegistry(bin_width=100)
        registry.count("hits", 9)
        registry.timeline("bus.occupancy").add_span(0, 40)
        clone = MetricsRegistry.from_dict(registry.as_dict())
        assert clone.counters == registry.counters
        assert (clone.timeline("bus.occupancy").series()
                == registry.timeline("bus.occupancy").series())


class TestProbeLifecycle:
    def test_finalize_and_summary(self):
        probe = InstrumentationProbe(bin_width=100)
        bus = SnoopyBus(probe=probe)
        bus.acquire(0, 40, 100)
        probe.finalize(200)
        digest = probe.summary()
        assert digest["execution_time"] == 200
        assert digest["bus_transactions"] == 1
        assert digest["events_recorded"] == 1
        assert digest["events_dropped"] == 0

    def test_summary_without_event_log(self):
        probe = InstrumentationProbe(record_events=False)
        assert probe.events is None
        probe.finalize(10)
        digest = probe.summary()
        assert "events_recorded" not in digest

    def test_rebin_collapses_every_timeline(self):
        probe = InstrumentationProbe(bin_width=10)
        bus = SnoopyBus(probe=probe)
        for start in range(0, 1000, 50):
            bus.acquire(start, 25, 10)
        before = probe.registry.timeline("bus.occupancy").total()
        probe.rebin(8)
        occupancy = probe.registry.timeline("bus.occupancy")
        assert len(occupancy) <= 8
        assert occupancy.total() == before
        # Cached handles must re-resolve to the rebinned timelines.
        bus2 = SnoopyBus(probe=probe)
        bus2.acquire(0, 5, 10)
        assert probe.registry.timeline("bus.occupancy").total() \
            == before + 5
