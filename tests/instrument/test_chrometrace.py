"""Chrome-trace (Perfetto) export: structure, ordering, and the
pid/tid topology mapping."""

import json

from repro.core.config import KB, SystemConfig
from repro.instrument import (InstrumentationProbe, chrome_trace,
                              write_chrome_trace)
from repro.instrument.chrometrace import (BUS_PID, SCC_TID, bank_tid,
                                          cluster_pid, proc_tid)
from repro.simulation import run_simulation
from repro.workloads.mp3d import MP3D


def _instrumented_run(procs=2, scc=8 * KB):
    config = SystemConfig.paper_parallel(processors_per_cluster=procs,
                                         scc_size=scc)
    probe = InstrumentationProbe(bin_width=256)
    run_simulation(config, MP3D(n_particles=120, steps=1),
                   instrumentation=probe)
    return config, probe


class TestTraceStructure:
    def test_round_trip_through_json(self, tmp_path):
        config, probe = _instrumented_run()
        path = write_chrome_trace(probe, tmp_path / "trace.json",
                                  config=config)
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["traceEvents"]
        assert payload["otherData"]["execution_time_cycles"] \
            == probe.execution_time
        # Re-serializing the in-memory dict matches the file payload.
        assert chrome_trace(probe, config=config) == payload

    def test_timestamps_are_monotonic(self):
        config, probe = _instrumented_run()
        events = chrome_trace(probe, config=config)["traceEvents"]
        timestamps = [e["ts"] for e in events if "ts" in e]
        assert timestamps
        assert all(a <= b for a, b in zip(timestamps, timestamps[1:]))

    def test_metadata_precedes_events(self):
        config, probe = _instrumented_run()
        events = chrome_trace(probe, config=config)["traceEvents"]
        phases = [e["ph"] for e in events]
        last_meta = max(i for i, ph in enumerate(phases) if ph == "M")
        first_real = min(i for i, ph in enumerate(phases) if ph != "M")
        assert last_meta < first_real

    def test_counter_track_respects_bin_cap(self):
        config, probe = _instrumented_run()
        events = chrome_trace(probe, config=config,
                              max_counter_bins=16)["traceEvents"]
        utilization = [e for e in events
                       if e["ph"] == "C" and e["name"] == "bus utilization"]
        assert 0 < len(utilization) <= 16
        assert all(0.0 <= e["args"]["fraction"] <= 1.0
                   for e in utilization)


class TestPidTidMapping:
    def test_bus_events_live_on_the_bus_pid(self):
        config, probe = _instrumented_run()
        events = chrome_trace(probe, config=config)["traceEvents"]
        slices = [e for e in events
                  if e["ph"] == "X" and e.get("cat") == "bus"]
        assert slices
        assert all(e["pid"] == BUS_PID for e in slices)

    def test_processors_map_to_cluster_pids_and_port_tids(self):
        config, probe = _instrumented_run()
        events = chrome_trace(probe, config=config)["traceEvents"]
        proc_slices = [e for e in events
                       if e["ph"] == "X" and e.get("cat") == "proc"]
        assert proc_slices
        valid_pids = {cluster_pid(c) for c in range(config.clusters)}
        valid_tids = {proc_tid(p)
                      for p in range(config.processors_per_cluster)}
        assert {e["pid"] for e in proc_slices} <= valid_pids
        assert {e["tid"] for e in proc_slices} <= valid_tids

    def test_bank_conflicts_map_to_bank_tids(self):
        config, probe = _instrumented_run(procs=4, scc=4 * KB)
        events = chrome_trace(probe, config=config)["traceEvents"]
        conflicts = [e for e in events
                     if e["ph"] == "i" and e["name"] == "bank conflict"]
        if conflicts:  # contention-dependent; mapping must hold if seen
            valid_tids = {bank_tid(b) for b in range(config.num_banks)}
            assert {e["tid"] for e in conflicts} <= valid_tids
        misses = [e for e in events
                  if e["ph"] == "i" and e["name"].endswith("miss")]
        assert misses
        assert all(e["tid"] == SCC_TID for e in misses)

    def test_every_pid_is_named(self):
        config, probe = _instrumented_run()
        events = chrome_trace(probe, config=config)["traceEvents"]
        named = {e["pid"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        used = {e["pid"] for e in events if e["ph"] != "M"}
        assert used <= named

    def test_without_config_processors_get_standalone_pids(self):
        _config, probe = _instrumented_run()
        events = chrome_trace(probe, config=None)["traceEvents"]
        proc_slices = [e for e in events
                       if e["ph"] == "X" and e.get("cat") == "proc"]
        assert proc_slices
        assert all(e["pid"] >= 1000 for e in proc_slices)
