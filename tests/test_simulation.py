"""Integration tests for the top-level simulation driver."""

import pytest

from repro import KB, SystemConfig, run_simulation
from repro.trace.events import Compute, Read, Write
from repro.workloads import BarnesHut, TracedApplication


class _TwoProcessPingPong(TracedApplication):
    """Minimal hand-written workload for driver-level checks."""

    name = "pingpong"

    def processes(self, config):
        def proc_a():
            yield Write(0x1000)
            yield Compute(50)
            yield Read(0x2000)

        def proc_b():
            yield Compute(10)
            yield Read(0x1000)

        return {0: proc_a(), 1: proc_b()}


class TestRunSimulation:
    def test_returns_consistent_result(self):
        config = SystemConfig(clusters=2, processors_per_cluster=1,
                              scc_size=4 * KB)
        result = run_simulation(config, _TwoProcessPingPong())
        assert result.config is config
        assert result.execution_time > 0
        assert result.events_processed == 5
        assert result.stats.execution_time == result.execution_time

    def test_cross_cluster_sharing_visible_in_stats(self):
        config = SystemConfig(clusters=2, processors_per_cluster=1,
                              scc_size=4 * KB)
        result = run_simulation(config, _TwoProcessPingPong())
        total = result.stats.total_scc
        # proc 1 reads the line proc 0 wrote: an intervention downgrade.
        assert total.interventions == 1

    def test_max_cycles_guard(self):
        config = SystemConfig(clusters=1, processors_per_cluster=1)

        class Endless(TracedApplication):
            def processes(self, config):
                def forever():
                    while True:
                        yield Compute(1000)
                return {0: forever()}

        with pytest.raises(RuntimeError):
            run_simulation(config, Endless(), max_cycles=10_000)

    def test_invariants_checked_after_real_workload(self):
        config = SystemConfig.paper_parallel(2, 2 * KB)
        result = run_simulation(config, BarnesHut(n_bodies=48, steps=1),
                                check_invariants=True)
        assert result.execution_time > 0

    def test_accounting_identity(self):
        """Total per-processor cycles equal busy + stalls, and the
        machine's execution time is at least every processor's total."""
        config = SystemConfig.paper_parallel(2, 4 * KB)
        result = run_simulation(config, BarnesHut(n_bodies=48, steps=1))
        for proc in result.stats.processors:
            assert proc.total_cycles == (proc.busy_cycles
                                         + proc.memory_stall_cycles
                                         + proc.sync_stall_cycles
                                         + proc.icache_stall_cycles)
            assert proc.total_cycles <= result.execution_time

    def test_global_counters_match_per_scc_sums(self):
        config = SystemConfig.paper_parallel(2, 4 * KB)
        result = run_simulation(config, BarnesHut(n_bodies=48, steps=1))
        total = result.stats.total_scc
        assert total.reads == sum(s.reads for s in result.stats.scc)
        assert total.read_misses == sum(s.read_misses
                                        for s in result.stats.scc)

    def test_references_match_reads_plus_writes(self):
        config = SystemConfig.paper_parallel(1, 4 * KB)
        result = run_simulation(config, BarnesHut(n_bodies=48, steps=1))
        total = result.stats.total_scc
        references = sum(p.references for p in result.stats.processors)
        assert references == total.reads + total.writes


class TestSummary:
    def test_summary_mentions_the_headline_numbers(self):
        config = SystemConfig(clusters=2, processors_per_cluster=1,
                              scc_size=4 * KB)
        result = run_simulation(config, _TwoProcessPingPong())
        text = result.summary()
        assert "2 clusters" in text
        assert "execution time" in text
        assert f"{result.execution_time:,}" in text
        assert "invalidations" in text
