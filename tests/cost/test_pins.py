"""Tests for pad counting and packaging feasibility."""

import pytest

from repro.cost.pins import (LINES_PER_PROCESSOR, choose_packaging,
                             perimeter_pad_capacity, signal_pads)


class TestSignalPads:
    def test_paper_lines_per_processor(self):
        assert LINES_PER_PROCESSOR == 160

    def test_four_proc_chip_matches_paper(self):
        # Two remote processors -> the paper's ~600 signal pads.
        assert signal_pads(2) == 600

    def test_grows_with_remote_processors(self):
        assert signal_pads(6) > signal_pads(2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            signal_pads(-1)


class TestPerimeter:
    def test_capacity_of_the_paper_die(self):
        assert perimeter_pad_capacity(18.0) == 600

    def test_finer_pitch_gives_more_pads(self):
        assert perimeter_pad_capacity(18.0, pad_pitch_um=60) == 1200

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            perimeter_pad_capacity(0)
        with pytest.raises(ValueError):
            perimeter_pad_capacity(18.0, pad_pitch_um=0)


class TestPackagingChoice:
    def test_600_pads_fit_the_perimeter(self):
        assert not choose_packaging(600).needs_c4

    def test_1100_pads_need_c4(self):
        """The eight-processor block's pad count forces C4
        (Section 4.5)."""
        choice = choose_packaging(1100)
        assert choice.needs_c4
        assert choice.perimeter_capacity == 600
