"""Tests for the load-latency sensitivity model (Table 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.cost.latency import (PAPER_LATENCY_MODELS, PAPER_TABLE5,
                                LoadLatencyModel, latency_factor)


class TestCalibration:
    @pytest.mark.parametrize("bench_name", sorted(PAPER_TABLE5))
    def test_reproduces_table5(self, bench_name):
        expected = PAPER_TABLE5[bench_name]
        for latency, value in zip((2, 3, 4), expected):
            assert latency_factor(bench_name, latency) == pytest.approx(
                value, abs=0.005)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            latency_factor("dhrystone", 3)


class TestModel:
    def test_two_cycle_load_is_the_baseline(self):
        model = LoadLatencyModel("m", 0.3, 0.2, 0.1)
        assert model.relative_time(2) == 1.0

    def test_monotone_in_latency(self):
        for model in PAPER_LATENCY_MODELS.values():
            assert (model.relative_time(2) <= model.relative_time(3)
                    <= model.relative_time(4))

    def test_rejects_sub_pipeline_latency(self):
        model = LoadLatencyModel("m", 0.3, 0.2, 0.1)
        with pytest.raises(ValueError):
            model.relative_time(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadLatencyModel("m", 0.0, 0.2, 0.1)
        with pytest.raises(ValueError):
            LoadLatencyModel("m", 0.3, 0.8, 0.5)
        with pytest.raises(ValueError):
            LoadLatencyModel("m", 0.3, -0.1, 0.0)

    @given(st.floats(0.05, 0.6), st.floats(0.0, 0.5), st.floats(0.0, 0.4))
    def test_stalls_grow_with_latency_for_any_mix(self, loads, p1, p2):
        if p1 + p2 > 1.0:
            p2 = 1.0 - p1
        model = LoadLatencyModel("m", loads, p1, p2)
        assert model.stalls_per_load(2) == 0.0
        assert model.stalls_per_load(3) <= model.stalls_per_load(4)
        assert model.relative_time(4) >= 1.0

    def test_four_cycle_stall_arithmetic(self):
        model = LoadLatencyModel("m", load_fraction=0.5,
                                 p_distance_1=0.4, p_distance_2=0.2)
        # d=1 stalls 2 cycles, d=2 stalls 1 cycle at L=4.
        assert model.stalls_per_load(4) == pytest.approx(0.4 * 2 + 0.2)
        assert model.relative_time(4) == pytest.approx(1.5)
