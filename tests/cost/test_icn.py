"""Tests for the crossbar ICN area model."""

import pytest
from hypothesis import given, strategies as st

from repro.cost.icn import (DEFAULT_PITCH_UM, WIRES_PER_PORT,
                            crossbar_area_mm2)


class TestCrossbarArea:
    def test_calibration_point(self):
        """The two-processor chip's 3-port x 8-bank ICN is 12.1 mm^2."""
        assert crossbar_area_mm2(3, 8) == pytest.approx(12.1, abs=0.05)

    def test_scales_linearly_with_ports(self):
        one = crossbar_area_mm2(1, 8)
        assert crossbar_area_mm2(5, 8) == pytest.approx(5 * one)

    def test_scales_linearly_with_banks(self):
        assert crossbar_area_mm2(3, 16) == pytest.approx(
            2 * crossbar_area_mm2(3, 8))

    def test_scales_linearly_with_pitch(self):
        assert crossbar_area_mm2(3, 8, pitch_um=0.8) == pytest.approx(
            crossbar_area_mm2(3, 8, pitch_um=1.6) / 2)

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            crossbar_area_mm2(0, 8)
        with pytest.raises(ValueError):
            crossbar_area_mm2(3, 0)
        with pytest.raises(ValueError):
            crossbar_area_mm2(3, 8, pitch_um=0)

    @given(st.integers(1, 12), st.integers(1, 64))
    def test_always_positive_and_monotone(self, ports, banks):
        area = crossbar_area_mm2(ports, banks)
        assert area > 0
        assert crossbar_area_mm2(ports + 1, banks) > area

    def test_defaults_are_the_paper_values(self):
        assert WIRES_PER_PORT == 160
        assert DEFAULT_PITCH_UM == 1.6
