"""Tests for the cost/performance combination (Tables 6-7 machinery)."""

import pytest

from repro.cost.costperf import (compare_configurations,
                                 cost_performance_gain, mcm_table,
                                 single_chip_table)

KB = 1024


def synthetic_surface(times):
    """Surface with the normalization point plus given configs."""
    surface = {(8, 512 * KB): 100.0}
    surface.update(times)
    return surface


class TestCompareConfigurations:
    def test_latency_correction_applied(self):
        surfaces = {"barnes-hut": synthetic_surface({
            (1, 64 * KB): 1000.0, (2, 32 * KB): 500.0})}
        table = single_chip_table(surfaces)
        one, two = table.row("barnes-hut")
        # 1 proc: 2-cycle loads -> factor 1.00; 2 procs: 3-cycle -> 1.06.
        assert one.normalized_time == pytest.approx(10.0)
        assert two.normalized_time == pytest.approx(5.0 * 1.06)
        assert one.load_latency == 2
        assert two.load_latency == 3

    def test_mcm_table_uses_four_cycle_loads(self):
        surfaces = {"mp3d": synthetic_surface({
            (4, 64 * KB): 300.0, (8, 128 * KB): 150.0})}
        table = mcm_table(surfaces)
        four, eight = table.row("mp3d")
        assert four.load_latency == 4
        assert eight.load_latency == 4
        assert four.normalized_time == pytest.approx(3.0 * 1.14)

    def test_mean_speedup(self):
        surfaces = {
            "barnes-hut": synthetic_surface({(1, 64 * KB): 1000.0,
                                             (2, 32 * KB): 500.0}),
        }
        table = single_chip_table(surfaces)
        speedup = table.mean_speedup(slower=(1, 64 * KB),
                                     faster=(2, 32 * KB))
        assert speedup == pytest.approx(2.0 / 1.06, rel=1e-6)

    def test_benchmarks_listed_in_order(self):
        surfaces = {
            "mp3d": synthetic_surface({(1, 64 * KB): 1.0,
                                       (2, 32 * KB): 1.0}),
            "barnes-hut": synthetic_surface({(1, 64 * KB): 1.0,
                                             (2, 32 * KB): 1.0}),
        }
        table = single_chip_table(surfaces)
        assert table.benchmarks == ["mp3d", "barnes-hut"]


class TestCostPerformance:
    def test_papers_arithmetic(self):
        """70% faster on a 37% bigger chip -> ~24% better cost/perf."""
        assert cost_performance_gain(1.70) == pytest.approx(0.243, abs=0.01)

    def test_break_even(self):
        area_ratio = 279.0 / 204.0
        assert cost_performance_gain(area_ratio) == pytest.approx(0.0)

    def test_slower_design_loses(self):
        assert cost_performance_gain(1.0) < 0.0


class TestMissingSurfacePointError:
    def surfaces(self):
        return {"mp3d": synthetic_surface({(2, 32 * KB): 50.0})}

    def test_missing_normalization_point_named(self):
        from repro.cost.costperf import MissingSurfacePointError
        with pytest.raises(MissingSurfacePointError) as info:
            compare_configurations({"mp3d": {(2, 32 * KB): 50.0}},
                                   configurations=((2, 32 * KB),))
        assert info.value.benchmark == "mp3d"
        assert info.value.point == (8, 512 * KB)
        assert "normalization configuration" in str(info.value)
        assert "512 KB" in str(info.value)

    def test_missing_requested_point_named(self):
        from repro.cost.costperf import MissingSurfacePointError
        with pytest.raises(MissingSurfacePointError) as info:
            compare_configurations(self.surfaces(),
                                   configurations=((4, 64 * KB),))
        assert info.value.point == (4, 64 * KB)
        assert "requested configuration" in str(info.value)

    def test_mean_speedup_names_missing_config(self):
        from repro.cost.costperf import MissingSurfacePointError
        table = compare_configurations(self.surfaces(),
                                       configurations=((2, 32 * KB),))
        with pytest.raises(MissingSurfacePointError,
                           match="speedup configuration"):
            table.mean_speedup(slower=(1, 64 * KB), faster=(2, 32 * KB))

    def test_row_names_missing_config(self):
        from repro.cost.costperf import MissingSurfacePointError
        table = compare_configurations(self.surfaces(),
                                       configurations=((2, 32 * KB),))
        broken = table.__class__(configurations=((1, 64 * KB),),
                                 cells=table.cells)
        with pytest.raises(MissingSurfacePointError,
                           match="table configuration"):
            broken.row("mp3d")

    def test_subclasses_keyerror(self):
        from repro.cost.costperf import MissingSurfacePointError
        with pytest.raises(KeyError):
            compare_configurations({"mp3d": {}},
                                   configurations=((2, 32 * KB),))


class TestSurfaceFromResults:
    def test_adapts_runstats_and_raw_cycles(self):
        from repro.cost.costperf import surface_from_results

        class FakeStats:
            execution_time = 123

        surface = surface_from_results({(1, 64 * KB): FakeStats(),
                                        (2, 32 * KB): 456})
        assert surface == {(1, 64 * KB): 123.0, (2, 32 * KB): 456.0}


class TestRecordedQuickSurfaces:
    """Section 5 pinned against recorded quick-profile sweep results
    (tests/cost/data/quick_surfaces.json, regenerate with grid_sweep
    on REPRO_PROFILE=quick)."""

    @pytest.fixture
    def surfaces(self):
        import json
        import pathlib
        path = pathlib.Path(__file__).parent / "data" / \
            "quick_surfaces.json"
        payload = json.loads(path.read_text())
        out = {}
        for benchmark in ("mp3d", "barnes-hut"):
            out[benchmark] = {
                tuple(int(part) for part in key.split(",")): float(time)
                for key, time in payload[benchmark].items()}
        return out

    def test_single_chip_two_processors_win(self, surfaces):
        """Section 5.1: the two-processor cluster beats the
        uniprocessor by more than its area premium, so its
        cost/performance gain is positive (the paper quotes 24% at a
        1.70x speedup on the full-size workloads)."""
        table = single_chip_table(surfaces)
        speedup = table.mean_speedup(slower=(1, 64 * KB),
                                     faster=(2, 32 * KB))
        assert speedup > 279.0 / 204.0  # faster than it is bigger
        assert cost_performance_gain(speedup) > 0
        # The paper's own arithmetic at its quoted speedup.
        assert cost_performance_gain(1.70) == pytest.approx(
            1.70 / (279.0 / 204.0) - 1.0)

    def test_mcm_entries_sit_above_the_reference(self, surfaces):
        """Table 7 reads slightly above 1: the recommended MCM designs
        trail the (uncorrected) 8-processor/512 KB reference once their
        smaller SCCs and 4-cycle loads are charged."""
        table = mcm_table(surfaces)
        for benchmark in ("mp3d", "barnes-hut"):
            for cell in table.row(benchmark):
                assert cell.normalized_time > 1.0
                assert cell.load_latency == 4

    def test_eight_procs_dominate_raw_time(self, surfaces):
        """Within each benchmark the recorded grid is monotone: more
        processors at the recommended sizes run faster raw."""
        for surface in surfaces.values():
            assert surface[(8, 128 * KB)] < surface[(4, 64 * KB)] \
                < surface[(2, 32 * KB)] < surface[(1, 64 * KB)]
