"""Tests for the cost/performance combination (Tables 6-7 machinery)."""

import pytest

from repro.cost.costperf import (compare_configurations,
                                 cost_performance_gain, mcm_table,
                                 single_chip_table)

KB = 1024


def synthetic_surface(times):
    """Surface with the normalization point plus given configs."""
    surface = {(8, 512 * KB): 100.0}
    surface.update(times)
    return surface


class TestCompareConfigurations:
    def test_latency_correction_applied(self):
        surfaces = {"barnes-hut": synthetic_surface({
            (1, 64 * KB): 1000.0, (2, 32 * KB): 500.0})}
        table = single_chip_table(surfaces)
        one, two = table.row("barnes-hut")
        # 1 proc: 2-cycle loads -> factor 1.00; 2 procs: 3-cycle -> 1.06.
        assert one.normalized_time == pytest.approx(10.0)
        assert two.normalized_time == pytest.approx(5.0 * 1.06)
        assert one.load_latency == 2
        assert two.load_latency == 3

    def test_mcm_table_uses_four_cycle_loads(self):
        surfaces = {"mp3d": synthetic_surface({
            (4, 64 * KB): 300.0, (8, 128 * KB): 150.0})}
        table = mcm_table(surfaces)
        four, eight = table.row("mp3d")
        assert four.load_latency == 4
        assert eight.load_latency == 4
        assert four.normalized_time == pytest.approx(3.0 * 1.14)

    def test_mean_speedup(self):
        surfaces = {
            "barnes-hut": synthetic_surface({(1, 64 * KB): 1000.0,
                                             (2, 32 * KB): 500.0}),
        }
        table = single_chip_table(surfaces)
        speedup = table.mean_speedup(slower=(1, 64 * KB),
                                     faster=(2, 32 * KB))
        assert speedup == pytest.approx(2.0 / 1.06, rel=1e-6)

    def test_benchmarks_listed_in_order(self):
        surfaces = {
            "mp3d": synthetic_surface({(1, 64 * KB): 1.0,
                                       (2, 32 * KB): 1.0}),
            "barnes-hut": synthetic_surface({(1, 64 * KB): 1.0,
                                             (2, 32 * KB): 1.0}),
        }
        table = single_chip_table(surfaces)
        assert table.benchmarks == ["mp3d", "barnes-hut"]


class TestCostPerformance:
    def test_papers_arithmetic(self):
        """70% faster on a 37% bigger chip -> ~24% better cost/perf."""
        assert cost_performance_gain(1.70) == pytest.approx(0.243, abs=0.01)

    def test_break_even(self):
        area_ratio = 279.0 / 204.0
        assert cost_performance_gain(area_ratio) == pytest.approx(0.0)

    def test_slower_design_loses(self):
        assert cost_performance_gain(1.0) < 0.0
