"""Tests for the process technology and scaling models."""

import pytest

from repro.cost.technology import (ALPHA_21064, CYCLE_TIME_FO4,
                                   BANK_ARBITRATION_FO4, PAPER_PROCESS,
                                   ProcessNode, ScaledProcessor)


class TestProcessNode:
    def test_paper_process_constants(self):
        assert PAPER_PROCESS.gate_length_um == 0.4
        assert PAPER_PROCESS.metal_layers == 3
        assert PAPER_PROCESS.max_die_area_mm2 == pytest.approx(324.0)

    def test_area_scaling_is_quadratic(self):
        fine = ProcessNode(0.4, 3, 18.0)
        coarse = ProcessNode(0.8, 3, 18.0)
        assert fine.area_scale_from(coarse) == pytest.approx(0.25)
        assert coarse.area_scale_from(fine) == pytest.approx(4.0)

    def test_identity_scale(self):
        assert PAPER_PROCESS.area_scale_from(PAPER_PROCESS) == 1.0


class TestScaledProcessor:
    def test_shrinks_from_the_alpha(self):
        scaled = ScaledProcessor.in_process()
        shrink = (0.4 / 0.68) ** 2
        assert scaled.core_area_mm2 == pytest.approx(
            ALPHA_21064.core_area_mm2 * shrink)

    def test_icache_doubles_capacity(self):
        scaled = ScaledProcessor.in_process()
        assert scaled.icache_kb == 16
        shrink = (0.4 / 0.68) ** 2
        assert scaled.icache_area_mm2 == pytest.approx(
            ALPHA_21064.icache_area_mm2 * shrink * 2)

    def test_total_area(self):
        scaled = ScaledProcessor.in_process()
        assert scaled.total_area_mm2 == pytest.approx(
            scaled.core_area_mm2 + scaled.icache_area_mm2)


class TestTimingConstants:
    def test_paper_cycle_and_arbitration(self):
        assert CYCLE_TIME_FO4 == 30
        assert BANK_ARBITRATION_FO4 == 17
        # Arbitration doesn't fit in the cycle -- that's why loads grow
        # to three cycles on the shared-cache chips.
        assert BANK_ARBITRATION_FO4 > CYCLE_TIME_FO4 / 2
