"""Tests for the SRAM area and access-time models."""

import pytest
from hypothesis import given, strategies as st

from repro.cost.sram import (DATA_CACHE_BLOCK, SCC_BANK_BLOCK,
                             access_time_fo4, cache_area_mm2,
                             max_direct_mapped_bytes)

KB = 1024


class TestBlocks:
    def test_paper_block_constants(self):
        assert DATA_CACHE_BLOCK.capacity_bytes == 8 * KB
        assert DATA_CACHE_BLOCK.area_mm2 == 6.6
        assert SCC_BANK_BLOCK.capacity_bytes == 4 * KB
        assert SCC_BANK_BLOCK.area_mm2 == 8.0

    def test_scc_blocks_pay_a_density_premium(self):
        """Arbitration, write buffers and crossbar drivers make SCC
        storage > 2x less dense (Section 4.3)."""
        assert SCC_BANK_BLOCK.mm2_per_kb > 2 * DATA_CACHE_BLOCK.mm2_per_kb

    def test_uniprocessor_data_cache_area(self):
        # 64 KB from 8 KB blocks: 8 blocks x 6.6 = 52.8 mm^2.
        assert cache_area_mm2(64 * KB, DATA_CACHE_BLOCK) == \
            pytest.approx(52.8)

    def test_two_proc_scc_area(self):
        # 32 KB SCC from 4 KB bank blocks: 8 x 8 = 64 mm^2.
        assert cache_area_mm2(32 * KB, SCC_BANK_BLOCK) == pytest.approx(64.0)

    def test_partial_blocks_round_up(self):
        assert cache_area_mm2(9 * KB, DATA_CACHE_BLOCK) == \
            pytest.approx(2 * 6.6)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            cache_area_mm2(0, DATA_CACHE_BLOCK)


class TestAccessTime:
    def test_64kb_hits_the_cycle_exactly(self):
        assert access_time_fo4(64 * KB) == pytest.approx(30.0)

    def test_larger_caches_exceed_the_cycle(self):
        assert access_time_fo4(128 * KB) > 30.0

    def test_max_direct_mapped(self):
        assert max_direct_mapped_bytes(30) == 64 * KB
        assert max_direct_mapped_bytes(33) == 128 * KB

    def test_rejects_tiny_caches(self):
        with pytest.raises(ValueError):
            access_time_fo4(512)

    @given(st.integers(0, 10))
    def test_monotone_in_capacity(self, doublings):
        small = KB << doublings
        assert access_time_fo4(small) < access_time_fo4(small * 2)

    @given(st.floats(15.0, 60.0))
    def test_inverse_is_consistent(self, budget):
        size = max_direct_mapped_bytes(budget)
        assert access_time_fo4(size) <= budget + 1e-9
        assert access_time_fo4(size * 2) > budget - 3.0 + 1e-9
