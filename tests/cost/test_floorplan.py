"""Tests for the cluster floorplans."""

import pytest

from repro.cost.floorplan import (CLUSTER_IMPLEMENTATIONS,
                                  implementation_for)
from repro.cost.sram import SCC_BANK_BLOCK, cache_area_mm2

KB = 1024


class TestQuotedNumbers:
    def test_chip_areas(self):
        assert CLUSTER_IMPLEMENTATIONS[1].chip_area_mm2 == 204.0
        assert CLUSTER_IMPLEMENTATIONS[2].chip_area_mm2 == 279.0
        assert CLUSTER_IMPLEMENTATIONS[4].chip_area_mm2 == 297.0
        assert CLUSTER_IMPLEMENTATIONS[8].chip_area_mm2 == 306.0

    def test_area_ratios_match_the_paper(self):
        assert CLUSTER_IMPLEMENTATIONS[2].area_ratio_vs_uniprocessor == \
            pytest.approx(1.37, abs=0.005)
        assert CLUSTER_IMPLEMENTATIONS[4].area_ratio_vs_uniprocessor == \
            pytest.approx(1.46, abs=0.005)
        assert CLUSTER_IMPLEMENTATIONS[8].area_ratio_vs_uniprocessor == \
            pytest.approx(1.50, abs=0.005)

    def test_load_latencies(self):
        assert CLUSTER_IMPLEMENTATIONS[1].load_latency == 2
        assert CLUSTER_IMPLEMENTATIONS[2].load_latency == 3
        assert CLUSTER_IMPLEMENTATIONS[4].load_latency == 4
        assert CLUSTER_IMPLEMENTATIONS[8].load_latency == 4

    def test_scc_sizes(self):
        assert CLUSTER_IMPLEMENTATIONS[1].scc_bytes == 64 * 1024
        assert CLUSTER_IMPLEMENTATIONS[2].scc_bytes == 32 * 1024
        assert CLUSTER_IMPLEMENTATIONS[4].scc_bytes == 64 * 1024
        assert CLUSTER_IMPLEMENTATIONS[8].scc_bytes == 128 * 1024

    def test_chips_per_cluster(self):
        assert [CLUSTER_IMPLEMENTATIONS[p].chips
                for p in (1, 2, 4, 8)] == [1, 1, 2, 4]


class TestDerived:
    def test_components_fit_inside_the_quoted_total(self):
        for impl in CLUSTER_IMPLEMENTATIONS.values():
            assert impl.overhead_mm2 > 0
            # Overhead (routing, pads, dead space) is under half the die.
            assert impl.overhead_mm2 < impl.chip_area_mm2 * 0.5

    def test_every_chip_fits_the_economical_die(self):
        for impl in CLUSTER_IMPLEMENTATIONS.values():
            assert impl.fits_die

    def test_cluster_area_counts_all_chips(self):
        eight = CLUSTER_IMPLEMENTATIONS[8]
        assert eight.cluster_area_mm2 == pytest.approx(4 * 306.0)

    def test_packaging_boundary(self):
        assert not CLUSTER_IMPLEMENTATIONS[1].packaging().needs_c4
        assert not CLUSTER_IMPLEMENTATIONS[4].packaging().needs_c4
        assert CLUSTER_IMPLEMENTATIONS[8].packaging().needs_c4

    def test_scc_components_present_for_shared_designs(self):
        for procs in (2, 4, 8):
            areas = CLUSTER_IMPLEMENTATIONS[procs].component_areas_mm2()
            assert "scc banks" in areas
            assert "icn" in areas
        assert "data cache" in \
            CLUSTER_IMPLEMENTATIONS[1].component_areas_mm2()


class TestLookup:
    def test_implementation_for(self):
        assert implementation_for(2).processors == 2

    def test_unknown_width_rejected(self):
        with pytest.raises(ValueError):
            implementation_for(3)


class TestCandidateClusterArea:
    """Parametric areas for search candidates: anchored on the drawn
    floorplans, monotone in every knob."""

    def test_anchors_on_paper_designs(self):
        from repro.cost.floorplan import candidate_cluster_area_mm2
        for procs, impl in CLUSTER_IMPLEMENTATIONS.items():
            assert candidate_cluster_area_mm2(
                procs, impl.scc_bytes) == pytest.approx(
                    impl.cluster_area_mm2)

    def test_monotone_in_capacity_and_knobs(self):
        from repro.cost.floorplan import candidate_cluster_area_mm2
        base = candidate_cluster_area_mm2(2, 32 * KB)
        assert candidate_cluster_area_mm2(2, 64 * KB) > base
        assert candidate_cluster_area_mm2(
            2, 32 * KB, associativity=2) > base
        assert candidate_cluster_area_mm2(
            2, 32 * KB, banks_per_processor=8) > base
        assert candidate_cluster_area_mm2(
            2, 32 * KB, write_buffer_depth=8) > base

    def test_shrinking_never_undercuts_the_core_floor(self):
        from repro.cost.floorplan import candidate_cluster_area_mm2
        tiny = candidate_cluster_area_mm2(8, 4 * KB,
                                          banks_per_processor=1,
                                          write_buffer_depth=1)
        impl = CLUSTER_IMPLEMENTATIONS[8]
        cores_floor = impl.cluster_area_mm2 - cache_area_mm2(
            impl.scc_bytes, SCC_BANK_BLOCK)
        assert tiny >= cores_floor

    def test_uniprocessor_has_no_icn_terms(self):
        from repro.cost.floorplan import candidate_cluster_area_mm2
        assert candidate_cluster_area_mm2(
            1, 64 * KB, banks_per_processor=8,
            write_buffer_depth=8) == pytest.approx(
                candidate_cluster_area_mm2(1, 64 * KB))

    def test_rejects_bad_knobs(self):
        from repro.cost.floorplan import candidate_cluster_area_mm2
        with pytest.raises(ValueError):
            candidate_cluster_area_mm2(2, 0)
        with pytest.raises(ValueError):
            candidate_cluster_area_mm2(2, 32 * KB, associativity=0)
        with pytest.raises(ValueError):
            candidate_cluster_area_mm2(3, 32 * KB)
