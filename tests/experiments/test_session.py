"""Tests for the checkpointed, fault-tolerant sweep session."""

import json
import os
import time

import pytest

from repro.core.config import KB
from repro.experiments.runner import (ResultCache, RunStats,
                                      _shutdown_pool, miss_surface_sweep,
                                      multiprogramming_sweep,
                                      parallel_sweep)
from repro.experiments.session import (FAULT_INJECT_ENV,
                                       STALE_TMP_AGE_S,
                                       QuarantinedPointError,
                                       SessionJournal, SweepSession,
                                       _maybe_inject_fault,
                                       prune_stale_journals, run_sweep)
from repro.experiments.spec import ExperimentProfile, SweepSpec


@pytest.fixture
def tiny_profile():
    return ExperimentProfile(
        name="tiny", ladder_scale=8,
        barnes_bodies=32, barnes_steps=1,
        mp3d_particles=60, mp3d_steps=1,
        cholesky_n=64,
        multiprog_instructions=2000, multiprog_quantum=500)


@pytest.fixture
def no_trace_stage(monkeypatch):
    """Disable record/replay resolution so every uncached point reaches
    the supervised-execution stage (where retries/faults live)."""
    from repro.experiments import session

    def passthrough(benchmark, profile, configs, missing, sweep, cache,
                    instrument, trace_cache, fused=True, backend=None):
        return missing

    monkeypatch.setattr(session, "_resolve_via_traces", passthrough)


@pytest.fixture
def fresh_pool():
    """Tear the persistent worker pool down around the test, so pool
    workers are created after the test's environment tweaks."""
    _shutdown_pool()
    yield
    _shutdown_pool()


def _stats(value: int = 1) -> RunStats:
    return RunStats(execution_time=value, read_miss_rate=0.25,
                    miss_rate=0.25, invalidations=0, reads=4, writes=4,
                    events=8)


def _grid_spec(tiny_profile, **knobs) -> SweepSpec:
    knobs.setdefault("ladder", (4 * KB, 8 * KB))
    knobs.setdefault("procs", (1, 2))
    knobs.setdefault("retry_backoff", 0.0)
    return SweepSpec.parallel("mp3d", profile=tiny_profile, **knobs)


class RecordingCompute:
    """Picklable compute stub: constant stats, scripted failures."""

    def __init__(self, fail=(), hang=()):
        self.fail = dict(fail)  # point -> times to raise before success
        self.calls = []

    def __call__(self, benchmark, profile, config, instrument, point,
                 backend=None):
        self.calls.append(point)
        if self.fail.get(point, 0) > 0:
            self.fail[point] -= 1
            raise RuntimeError(f"scripted failure at {point}")
        return _stats(point[0] * 1000 + point[1])


class TestShimEquivalence:
    def test_parallel_shim_bit_identical(self, tmp_path, tiny_profile):
        """The deprecated entry point and run_sweep(spec) compute the
        same grid bit-for-bit from independent caches."""
        grid = dict(ladder=(4 * KB, 8 * KB), procs=(1, 2))
        with pytest.warns(DeprecationWarning) as caught:
            old = parallel_sweep("mp3d", tiny_profile,
                                 ResultCache(tmp_path / "old"), **grid)
        # stacklevel=2: the warning must blame the shim's caller.
        assert caught[0].filename == __file__
        new = run_sweep(
            SweepSpec.parallel("mp3d", profile=tiny_profile, **grid),
            cache=ResultCache(tmp_path / "new"))
        assert set(old) == set(new)
        for point in old:
            assert old[point].as_dict() == new[point].as_dict()

    def test_multiprogramming_shim_bit_identical(self, tmp_path,
                                                 tiny_profile):
        grid = dict(ladder=(2 * KB, 4 * KB), procs=(1,))
        with pytest.warns(DeprecationWarning) as caught:
            old = multiprogramming_sweep(
                tiny_profile, ResultCache(tmp_path / "old"), **grid)
        assert caught[0].filename == __file__
        new = run_sweep(
            SweepSpec.multiprogramming(profile=tiny_profile, **grid),
            cache=ResultCache(tmp_path / "new"))
        assert set(old) == set(new)
        for point in old:
            assert old[point].as_dict() == new[point].as_dict()

    def test_miss_surface_shim_equivalent(self, tiny_profile):
        ladder = (2 * KB, 8 * KB)
        with pytest.warns(DeprecationWarning) as caught:
            old = miss_surface_sweep("mp3d", tiny_profile,
                                     procs_per_cluster=2, ladder=ladder)
        assert caught[0].filename == __file__
        new = run_sweep(SweepSpec.miss_surface(
            "mp3d", profile=tiny_profile, procs_per_cluster=2,
            ladder=ladder))
        assert old == new


class TestJournal:
    def test_roundtrip(self, tmp_path, tiny_profile):
        spec = _grid_spec(tiny_profile)
        journal = SessionJournal(spec, tmp_path)
        journal.record((1, 4 * KB), "done", stats=_stats(7), attempts=2)
        journal.record((2, 8 * KB), "quarantined", attempts=3,
                       reason="boom")
        reloaded = SessionJournal(spec, tmp_path)
        assert reloaded.load()
        done = reloaded.entry((1, 4 * KB))
        assert done["status"] == "done" and done["attempts"] == 2
        assert RunStats.from_dict(done["stats"]) == _stats(7)
        assert done["digest"]
        bad = reloaded.entry((2, 8 * KB))
        assert bad["status"] == "quarantined" and bad["reason"] == "boom"

    def test_corrupt_journal_discarded(self, tmp_path, tiny_profile):
        spec = _grid_spec(tiny_profile)
        journal = SessionJournal(spec, tmp_path)
        journal.record((1, 4 * KB), "done", stats=_stats())
        journal.path.write_text("{torn write")
        fresh = SessionJournal(spec, tmp_path)
        assert not fresh.load()
        assert not journal.path.exists()

    def test_signature_mismatch_starts_fresh(self, tmp_path,
                                             tiny_profile):
        spec = _grid_spec(tiny_profile)
        journal = SessionJournal(spec, tmp_path)
        journal.record((1, 4 * KB), "done", stats=_stats())
        payload = json.loads(journal.path.read_text())
        payload["signature"] = "somebody-else"
        journal.path.write_text(json.dumps(payload))
        assert not SessionJournal(spec, tmp_path).load()

    def test_version_mismatch_starts_fresh(self, tmp_path, tiny_profile):
        spec = _grid_spec(tiny_profile)
        journal = SessionJournal(spec, tmp_path)
        journal.record((1, 4 * KB), "done", stats=_stats())
        payload = json.loads(journal.path.read_text())
        payload["version"] = 999
        journal.path.write_text(json.dumps(payload))
        assert not SessionJournal(spec, tmp_path).load()

    def test_journals_keyed_by_signature(self, tmp_path, tiny_profile):
        a = _grid_spec(tiny_profile)
        b = _grid_spec(tiny_profile, ladder=(4 * KB,))
        assert SessionJournal(a, tmp_path).path != \
            SessionJournal(b, tmp_path).path
        # Execution knobs share the journal.
        c = _grid_spec(tiny_profile, jobs=4, max_attempts=1)
        assert SessionJournal(a, tmp_path).path == \
            SessionJournal(c, tmp_path).path

    def test_directoryless_journal_is_ephemeral(self, tiny_profile):
        journal = SessionJournal(_grid_spec(tiny_profile), None)
        assert journal.path is None
        journal.record((1, 4 * KB), "done", stats=_stats())
        assert not journal.load()


class TestJournalPruning:
    """Session-directory GC: finished journals and orphaned temp files
    are removed on session open; anything --resume could still want is
    kept."""

    def _journal(self, spec, directory, *, quarantine=None,
                 points=None) -> SessionJournal:
        journal = SessionJournal(spec, directory)
        for point in (points if points is not None else spec.configs()):
            if quarantine and point in quarantine:
                journal.record(point, "quarantined", reason="boom")
            else:
                journal.record(point, "done", stats=_stats())
        return journal

    def test_finished_foreign_journal_removed(self, tmp_path,
                                              tiny_profile):
        finished = self._journal(_grid_spec(tiny_profile), tmp_path)
        removed = prune_stale_journals(tmp_path)
        assert removed == [finished.path]
        assert not finished.path.exists()

    def test_own_journal_kept_even_when_finished(self, tmp_path,
                                                 tiny_profile):
        spec = _grid_spec(tiny_profile)
        own = self._journal(spec, tmp_path)
        assert prune_stale_journals(
            tmp_path, keep_signature=spec.signature()) == []
        assert own.path.exists()

    def test_incomplete_journal_kept(self, tmp_path, tiny_profile):
        spec = _grid_spec(tiny_profile)
        partial = self._journal(spec, tmp_path,
                                points=list(spec.configs())[:1])
        assert prune_stale_journals(tmp_path) == []
        assert partial.path.exists()

    def test_quarantine_bearing_journal_kept(self, tmp_path,
                                             tiny_profile):
        spec = _grid_spec(tiny_profile)
        poisoned = self._journal(spec, tmp_path,
                                 quarantine={(1, 4 * KB)})
        assert prune_stale_journals(tmp_path) == []
        assert poisoned.path.exists()

    def test_corrupt_journal_left_for_load_to_report(self, tmp_path):
        torn = tmp_path / "deadbeef.json"
        torn.write_text("{torn write")
        assert prune_stale_journals(tmp_path) == []
        assert torn.exists()

    def test_orphaned_tmp_removed_fresh_tmp_kept(self, tmp_path):
        orphan = tmp_path / "aaaa.json.12345.tmp"
        orphan.write_text("{")
        stale_stamp = time.time() - 2 * STALE_TMP_AGE_S
        os.utime(orphan, (stale_stamp, stale_stamp))
        fresh = tmp_path / "bbbb.json.12345.tmp"
        fresh.write_text("{")
        removed = prune_stale_journals(tmp_path)
        assert removed == [orphan]
        assert not orphan.exists() and fresh.exists()

    def test_missing_or_absent_directory_is_a_noop(self, tmp_path):
        assert prune_stale_journals(tmp_path / "never-created") == []
        assert prune_stale_journals(None) == []

    def test_session_open_prunes_previous_sweeps(self, tmp_path,
                                                 tiny_profile,
                                                 no_trace_stage):
        old_spec = _grid_spec(tiny_profile, ladder=(2 * KB,))
        finished = self._journal(old_spec, tmp_path)
        spec = _grid_spec(tiny_profile)
        result = SweepSession(spec, cache=None, session_dir=tmp_path,
                              compute=RecordingCompute()).run()
        assert result.complete
        assert not finished.path.exists()  # GC ran on open
        assert SessionJournal(spec, tmp_path).path.exists()


class TestSessionStages:
    def test_all_points_computed_and_journaled(self, tmp_path,
                                               tiny_profile,
                                               no_trace_stage):
        spec = _grid_spec(tiny_profile)
        compute = RecordingCompute()
        session = SweepSession(spec, cache=None, session_dir=tmp_path,
                               compute=compute)
        result = session.run()
        assert set(result.sweep) == set(spec.configs())
        assert result.complete
        assert result.counters["total"] == 4
        assert result.counters["computed"] == 4
        assert session.journal.path.exists()

    def test_resume_restores_from_journal(self, tmp_path, tiny_profile,
                                          no_trace_stage):
        spec = _grid_spec(tiny_profile)
        first = SweepSession(spec, cache=None, session_dir=tmp_path,
                             compute=RecordingCompute()).run()
        untouchable = RecordingCompute()
        resumed = SweepSession(spec, cache=None, session_dir=tmp_path,
                               resume=True, compute=untouchable).run()
        assert untouchable.calls == []
        assert resumed.counters["journaled"] == 4
        assert {p: s.as_dict() for p, s in resumed.sweep.items()} == \
            {p: s.as_dict() for p, s in first.sweep.items()}

    def test_fresh_run_resets_journal(self, tmp_path, tiny_profile,
                                      no_trace_stage):
        spec = _grid_spec(tiny_profile)
        SweepSession(spec, cache=None, session_dir=tmp_path,
                     compute=RecordingCompute()).run()
        compute = RecordingCompute()
        again = SweepSession(spec, cache=None, session_dir=tmp_path,
                             resume=False, compute=compute).run()
        assert len(compute.calls) == 4
        assert again.counters["computed"] == 4

    def test_result_cache_stage(self, tmp_path, tiny_profile,
                                no_trace_stage):
        spec = _grid_spec(tiny_profile)
        cache = ResultCache(tmp_path / "cache")
        for point, config in spec.configs().items():
            cache.put(spec.point_key(config), _stats(point[1]))
        compute = RecordingCompute()
        result = SweepSession(spec, cache=cache,
                              session_dir=tmp_path / "sessions",
                              compute=compute).run()
        assert compute.calls == []
        assert result.counters["cached"] == 4

    def test_resume_heals_wiped_result_cache(self, tmp_path,
                                             tiny_profile,
                                             no_trace_stage):
        spec = _grid_spec(tiny_profile)
        cache_dir = tmp_path / "cache"
        SweepSession(spec, cache=ResultCache(cache_dir),
                     session_dir=tmp_path / "sessions",
                     compute=RecordingCompute()).run()
        for path in cache_dir.glob("*.json"):
            path.unlink()
        cache = ResultCache(cache_dir)
        resumed = SweepSession(spec, cache=cache,
                               session_dir=tmp_path / "sessions",
                               resume=True,
                               compute=RecordingCompute()).run()
        assert resumed.counters["journaled"] == 4
        for point, config in spec.configs().items():
            assert cache.get(spec.point_key(config)) is not None

    def test_progress_callback_sees_every_point(self, tmp_path,
                                                tiny_profile,
                                                no_trace_stage):
        spec = _grid_spec(tiny_profile)
        seen = []
        SweepSession(
            spec, cache=None, session_dir=tmp_path,
            compute=RecordingCompute(),
            progress=lambda point, status, done, total, counters:
                seen.append((point, status, done, total))).run()
        assert len(seen) == 4
        assert [done for _, _, done, _ in seen] == [1, 2, 3, 4]
        assert all(status == "computed" for _, status, _, _ in seen)


class TestRetriesAndQuarantine:
    def test_transient_failure_is_retried(self, tmp_path, tiny_profile,
                                          no_trace_stage):
        spec = _grid_spec(tiny_profile, max_attempts=3)
        flaky = (1, 4 * KB)
        compute = RecordingCompute(fail={flaky: 1})
        result = SweepSession(spec, cache=None, session_dir=tmp_path,
                              compute=compute).run()
        assert result.complete
        assert result.counters["retried"] == 1
        assert compute.calls.count(flaky) == 2
        assert SweepSession(spec, cache=None, session_dir=tmp_path,
                            resume=True,
                            compute=RecordingCompute()).run().sweep
        journal = SessionJournal(spec, tmp_path)
        journal.load()
        assert journal.entry(flaky)["attempts"] == 2

    def test_poisoned_point_is_quarantined(self, tmp_path, tiny_profile,
                                           no_trace_stage):
        spec = _grid_spec(tiny_profile, max_attempts=2)
        poisoned = (2, 8 * KB)
        compute = RecordingCompute(fail={poisoned: 99})
        session = SweepSession(spec, cache=None, session_dir=tmp_path,
                               compute=compute)
        result = session.run()
        assert set(result.quarantined) == {poisoned}
        assert "RuntimeError" in result.quarantined[poisoned]
        assert "after 2 attempts" in result.quarantined[poisoned]
        # The rest of the grid still resolved.
        assert set(result.sweep) == set(spec.configs()) - {poisoned}
        assert result.counters["quarantined"] == 1
        assert "1 quarantined" in result.summary()

    def test_run_sweep_raises_after_resolving_grid(self, tmp_path,
                                                   tiny_profile,
                                                   no_trace_stage,
                                                   monkeypatch):
        from repro.experiments import session as session_module
        spec = _grid_spec(tiny_profile, max_attempts=1)
        poisoned = (1, 8 * KB)
        compute = RecordingCompute(fail={poisoned: 99})
        monkeypatch.setattr(session_module, "_point_task", compute)
        with pytest.raises(QuarantinedPointError) as err:
            run_sweep(spec, cache=None, session_dir=tmp_path)
        assert set(err.value.quarantined) == {poisoned}
        assert "scc=8192B" in str(err.value)

    def test_resume_gives_quarantined_points_a_fresh_chance(
            self, tmp_path, tiny_profile, no_trace_stage):
        spec = _grid_spec(tiny_profile, max_attempts=1)
        poisoned = (1, 4 * KB)
        SweepSession(spec, cache=None, session_dir=tmp_path,
                     compute=RecordingCompute(fail={poisoned: 99})).run()
        healed = SweepSession(spec, cache=None, session_dir=tmp_path,
                              resume=True,
                              compute=RecordingCompute()).run()
        assert healed.complete
        assert healed.counters["journaled"] == 3
        assert healed.counters["computed"] == 1
        assert poisoned in healed.sweep


class TestFaultInjection:
    def test_injected_raise_quarantines_point(self, tmp_path,
                                              tiny_profile,
                                              no_trace_stage,
                                              monkeypatch):
        target = (1, 4 * KB)
        monkeypatch.setenv(FAULT_INJECT_ENV, "1:4096:raise")
        spec = _grid_spec(tiny_profile, ladder=(4 * KB,), procs=(1, 2),
                          max_attempts=2)
        session = SweepSession(spec, cache=None, session_dir=tmp_path)
        result = session.run()
        assert set(result.quarantined) == {target}
        assert "injected fault" in result.quarantined[target]
        assert (2, 4 * KB) in result.sweep
        assert result.counters["retried"] == 1

    def test_injection_targets_one_point(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "1:4096:raise")
        _maybe_inject_fault((2, 4096))  # not the target: no-op
        with pytest.raises(RuntimeError):
            _maybe_inject_fault((1, 4096))

    def test_malformed_injection_spec_rejected(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "nonsense")
        with pytest.raises(ValueError):
            _maybe_inject_fault((1, 4096))
        monkeypatch.setenv(FAULT_INJECT_ENV, "1:4096:explode")
        with pytest.raises(ValueError):
            _maybe_inject_fault((1, 4096))


class TestPooledExecution:
    def test_pooled_points_compute_and_journal(self, tmp_path,
                                               tiny_profile,
                                               no_trace_stage,
                                               fresh_pool):
        spec = _grid_spec(tiny_profile, ladder=(4 * KB, 8 * KB),
                          procs=(1,), jobs=2)
        result = SweepSession(spec, cache=None,
                              session_dir=tmp_path).run()
        assert result.complete
        assert result.counters["computed"] == 2
        journal = SessionJournal(spec, tmp_path)
        assert journal.load()
        assert journal.entry((1, 4 * KB))["status"] == "done"

    def test_hung_point_times_out_and_quarantines(self, tmp_path,
                                                  tiny_profile,
                                                  no_trace_stage,
                                                  fresh_pool,
                                                  monkeypatch):
        """A worker stuck in a simulation is killed at the deadline and
        the point quarantined; the rest of the grid still resolves on
        the rebuilt pool."""
        monkeypatch.setenv(FAULT_INJECT_ENV, "1:4096:hang")
        spec = _grid_spec(tiny_profile, ladder=(4 * KB, 8 * KB),
                          procs=(1,), jobs=2, max_attempts=1,
                          point_timeout=1.0)
        result = SweepSession(spec, cache=None,
                              session_dir=tmp_path).run()
        assert set(result.quarantined) == {(1, 4 * KB)}
        assert "no result within" in result.quarantined[(1, 4 * KB)]
        assert (1, 8 * KB) in result.sweep

    def test_timeout_alone_forces_pool(self, tmp_path, tiny_profile,
                                       no_trace_stage, fresh_pool):
        """A serial spec with a timeout still gets supervised execution
        (timeouts need a killable worker process)."""
        spec = _grid_spec(tiny_profile, ladder=(4 * KB,), procs=(1,),
                          jobs=None, point_timeout=30.0)
        result = SweepSession(spec, cache=None,
                              session_dir=tmp_path).run()
        assert result.complete
        assert result.counters["computed"] == 1
