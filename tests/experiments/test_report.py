"""Tests for the report renderers."""

import pytest

from repro.experiments.report import format_size, render_table


class TestRenderTable:
    def test_basic_rendering(self):
        text = render_table("title", ["name", "value"],
                            [["alpha", 1.2345], ["b", 2]])
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]
        assert "1.23" in lines[3]

    def test_columns_align(self):
        text = render_table("t", ["a", "b"],
                            [["xxxxxxxx", 1], ["y", 22]])
        lines = text.splitlines()
        assert len(lines[3]) == len(lines[4])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table("t", ["a", "b"], [["only-one"]])


class TestFormatSize:
    def test_kb_sizes(self):
        assert format_size(4096) == "4 KB"
        assert format_size(512 * 1024) == "512 KB"

    def test_sub_kb_sizes(self):
        assert format_size(512) == "512 B"
        assert format_size(1536) == "1536 B"


class TestAsciiChart:
    def _chart(self, **kwargs):
        from repro.experiments.report import render_ascii_chart
        series = {"1": [(0, 10.0), (1, 5.0), (2, 1.0)],
                  "2": [(0, 8.0), (1, 2.0), (2, 0.5)]}
        return render_ascii_chart("chart", series,
                                  ["4KB", "8KB", "16KB"], **kwargs)

    def test_contains_markers_and_labels(self):
        text = self._chart()
        assert "chart" in text
        assert "1" in text and "2" in text
        assert "4KB" in text and "16KB" in text

    def test_extremes_land_on_edge_rows(self):
        text = self._chart(height=10)
        lines = text.splitlines()
        data_lines = [line for line in lines if "|" in line]
        assert "1" in data_lines[0]        # max value on the top row
        assert "2" in data_lines[-1]       # min value on the bottom row

    def test_linear_scale(self):
        text = self._chart(log_y=False)
        assert "10.00" in text

    def test_rejects_empty_series(self):
        import pytest
        from repro.experiments.report import render_ascii_chart
        with pytest.raises(ValueError):
            render_ascii_chart("t", {}, ["a"])
        with pytest.raises(ValueError):
            render_ascii_chart("t", {"1": []}, ["a"])

    def test_rejects_nonpositive_on_log_scale(self):
        import pytest
        from repro.experiments.report import render_ascii_chart
        with pytest.raises(ValueError):
            render_ascii_chart("t", {"1": [(0, 0.0)]}, ["a"])

    def test_rejects_out_of_range_x(self):
        import pytest
        from repro.experiments.report import render_ascii_chart
        with pytest.raises(ValueError):
            render_ascii_chart("t", {"1": [(5, 1.0)]}, ["a"])
