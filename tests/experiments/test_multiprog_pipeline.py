"""Tests for the Section 3.2 pipelines, on synthetic sweeps."""

import pytest

from repro.core.config import KB
from repro.experiments.multiprog import (degradation_factor, figure5_curves,
                                         figure6_speedups, render_figure5,
                                         render_figure6,
                                         smallest_to_largest_improvement)
from repro.experiments.runner import PAPER_LADDER, PROCS_SWEPT, RunStats


def synthetic_sweep():
    """Interference model: efficiency improves with SCC size."""
    sweep = {}
    for size_index, size in enumerate(PAPER_LADDER):
        efficiency = 0.4 + 0.07 * size_index   # 0.4 .. 0.89
        for procs in PROCS_SWEPT:
            speedup = 1.0 if procs == 1 else procs * efficiency
            time = int(8_000_000 * (0.85 ** size_index) / speedup)
            sweep[(procs, size)] = RunStats(
                execution_time=time, read_miss_rate=0.2, miss_rate=0.2,
                invalidations=0, reads=1000, writes=300, events=1000)
    return sweep


class TestFigure5:
    def test_curves_normalized_to_best(self):
        curves = figure5_curves(synthetic_sweep())
        assert dict(curves[8])[512 * KB] == pytest.approx(1.0)
        assert dict(curves[1])[4 * KB] > dict(curves[1])[512 * KB]

    def test_improvement_metric(self):
        sweep = synthetic_sweep()
        improvement = smallest_to_largest_improvement(sweep, procs=8)
        assert improvement > smallest_to_largest_improvement(sweep, procs=1)


class TestFigure6:
    def test_speedups_are_self_relative(self):
        table = figure6_speedups(synthetic_sweep())
        for size in PAPER_LADDER:
            assert table[size][0] == pytest.approx(1.0)

    def test_degradation_shrinks_with_size(self):
        sweep = synthetic_sweep()
        assert (degradation_factor(sweep, 512 * KB)
                < degradation_factor(sweep, 4 * KB))


class TestRenderers:
    def test_render_figure5(self):
        assert "512 KB" in render_figure5(synthetic_sweep())

    def test_render_figure6(self):
        text = render_figure6(synthetic_sweep())
        assert "self-relative" in text
        assert "1.00" in text
