"""Tests for the declarative SweepSpec API."""

import argparse

import pytest

from repro.core.config import KB, SystemConfig
from repro.experiments.spec import (KNOWN_BENCHMARKS, PAPER_LADDER,
                                    PROCS_SWEPT, PROFILES,
                                    ExperimentProfile, SweepSpec,
                                    point_cache_key)


@pytest.fixture
def tiny_profile():
    return ExperimentProfile(
        name="tiny", ladder_scale=8,
        barnes_bodies=32, barnes_steps=1,
        mp3d_particles=60, mp3d_steps=1,
        cholesky_n=64,
        multiprog_instructions=2000, multiprog_quantum=500)


class TestValidation:
    def test_defaults_cover_the_paper_grid(self, tiny_profile):
        spec = SweepSpec.parallel("mp3d", profile=tiny_profile)
        assert spec.ladder == PAPER_LADDER
        assert spec.procs == PROCS_SWEPT
        assert spec.instrument and spec.fused
        assert spec.max_attempts == 3

    def test_sequences_coerced_to_tuples(self, tiny_profile):
        spec = SweepSpec.parallel("mp3d", profile=tiny_profile,
                                  ladder=[4 * KB, 8 * KB], procs=[1, 2])
        assert spec.ladder == (4 * KB, 8 * KB)
        assert spec.procs == (1, 2)
        hash(spec)  # frozen + tuple fields => hashable

    @pytest.mark.parametrize("bad", [
        dict(kind="grid"),
        dict(benchmark="linpack"),
        dict(ladder=()),
        dict(ladder=(0,)),
        dict(ladder=(4096.0,)),
        dict(procs=()),
        dict(procs=(0,)),
        dict(jobs=0),
        dict(max_attempts=0),
        dict(point_timeout=0.0),
        dict(retry_backoff=-1.0),
    ])
    def test_rejects_bad_fields(self, tiny_profile, bad):
        fields = dict(kind="parallel", benchmark="mp3d",
                      profile=tiny_profile)
        fields.update(bad)
        with pytest.raises(ValueError):
            SweepSpec(**fields)

    def test_rejects_non_profile(self):
        with pytest.raises(ValueError):
            SweepSpec(kind="parallel", benchmark="mp3d", profile="quick")

    def test_multiprogramming_kind_pins_benchmark(self, tiny_profile):
        with pytest.raises(ValueError):
            SweepSpec(kind="multiprogramming", benchmark="mp3d",
                      profile=tiny_profile)

    def test_miss_surface_takes_one_row(self, tiny_profile):
        with pytest.raises(ValueError):
            SweepSpec(kind="miss-surface", benchmark="mp3d",
                      profile=tiny_profile, procs=(1, 2))
        spec = SweepSpec.miss_surface("mp3d", profile=tiny_profile,
                                      procs_per_cluster=4)
        assert spec.procs == (4,)


class TestConfigs:
    def test_parallel_grid(self, tiny_profile):
        spec = SweepSpec.parallel("mp3d", profile=tiny_profile,
                                  ladder=(4 * KB, 8 * KB), procs=(1, 2))
        configs = spec.configs()
        assert set(configs) == {(1, 4 * KB), (2, 4 * KB),
                                (1, 8 * KB), (2, 8 * KB)}
        config = configs[(2, 8 * KB)]
        assert config.processors_per_cluster == 2
        assert config.scc_size == 8 * KB // tiny_profile.ladder_scale
        assert not config.model_icache

    def test_multiprogramming_grid_scales_icache(self, tiny_profile):
        spec = SweepSpec.multiprogramming(profile=tiny_profile,
                                          ladder=(4 * KB,), procs=(2,))
        config = spec.configs()[(2, 4 * KB)]
        assert config.clusters == 1
        assert config.model_icache
        assert config.icache_size == max(
            16 * KB // tiny_profile.ladder_scale, 512)

    def test_miss_surface_has_no_point_grid(self, tiny_profile):
        spec = SweepSpec.miss_surface("mp3d", profile=tiny_profile)
        with pytest.raises(ValueError):
            spec.configs()


class TestCacheKeys:
    def test_point_key_matches_historical_format(self, tiny_profile):
        """Warm caches must survive the API redesign: the per-point key
        is the exact pre-SweepSpec format."""
        config = SystemConfig.paper_parallel(2, 1 * KB)
        expected = (f"mp3d|{tiny_profile}|clusters={config.clusters}"
                    f"|procs={config.processors_per_cluster}"
                    f"|scc={config.scc_size}"
                    f"|icache={config.icache_size}"
                    f"|model_icache={config.model_icache}")
        assert point_cache_key("mp3d", tiny_profile, config) == expected
        assert point_cache_key("mp3d", tiny_profile, config,
                               instrument=False) == (
            expected + "|instrument=False")

    def test_runner_alias_unchanged(self, tiny_profile):
        from repro.experiments.runner import _stats_key
        config = SystemConfig.paper_parallel(1, 1 * KB)
        assert _stats_key("mp3d", tiny_profile, config) == \
            point_cache_key("mp3d", tiny_profile, config)

    def test_spec_point_key_uses_instrument_flag(self, tiny_profile):
        spec = SweepSpec.parallel("mp3d", profile=tiny_profile,
                                  instrument=False)
        config = SystemConfig.paper_parallel(1, 1 * KB)
        assert spec.point_key(config).endswith("|instrument=False")


class TestSignature:
    def test_execution_knobs_do_not_change_identity(self, tiny_profile):
        """jobs/fused/retry policy only change *how* results are
        obtained, so a journal keyed by the signature survives them."""
        base = SweepSpec.parallel("mp3d", profile=tiny_profile)
        for knobs in (dict(jobs=4), dict(fused=False),
                      dict(max_attempts=1), dict(point_timeout=5.0),
                      dict(retry_backoff=0.0), dict(backend="native"),
                      dict(backend="python")):
            other = SweepSpec.parallel("mp3d", profile=tiny_profile,
                                       **knobs)
            assert other.signature() == base.signature()

    def test_backend_absent_from_identity_and_point_keys(self,
                                                         tiny_profile):
        """The replay engine is execution-only: warm result caches and
        journals must survive switching between the python, numpy, and
        native tiers (and the compiled fused ladder rides the same
        knob)."""
        base = SweepSpec.parallel("mp3d", profile=tiny_profile)
        config = SystemConfig.paper_parallel(2, 1 * KB)
        for backend in ("python", "numpy", "native", "auto"):
            other = SweepSpec.parallel("mp3d", profile=tiny_profile,
                                       backend=backend)
            assert "backend" not in other.describe()
            assert other.signature() == base.signature()
            assert other.point_key(config) == base.point_key(config)

    def test_identity_fields_change_signature(self, tiny_profile):
        base = SweepSpec.parallel("mp3d", profile=tiny_profile)
        different = [
            SweepSpec.parallel("cholesky", profile=tiny_profile),
            SweepSpec.parallel("mp3d", profile=tiny_profile,
                               ladder=(4 * KB,)),
            SweepSpec.parallel("mp3d", profile=tiny_profile,
                               procs=(1,)),
            SweepSpec.parallel("mp3d", profile=tiny_profile,
                               instrument=False),
            SweepSpec.parallel("mp3d", profile=PROFILES["quick"]),
        ]
        signatures = {spec.signature() for spec in different}
        assert base.signature() not in signatures
        assert len(signatures) == len(different)

    def test_describe_is_json_safe_identity(self, tiny_profile):
        import json
        spec = SweepSpec.parallel("mp3d", profile=tiny_profile, jobs=7)
        payload = json.loads(json.dumps(spec.describe()))
        assert payload["benchmark"] == "mp3d"
        assert "jobs" not in payload
        assert "max_attempts" not in payload


class TestFromCliArgs:
    @staticmethod
    def _args(**overrides):
        defaults = dict(benchmark="mp3d", profile=None, ladder=None,
                        procs=None, no_instrument=False, no_fused=False,
                        jobs=None, resume=False, retries=2, timeout=None,
                        backoff=0.5)
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "quick")
        spec = SweepSpec.from_cli_args(self._args())
        assert spec.kind == "parallel"
        assert spec.profile is PROFILES["quick"]
        assert spec.ladder == PAPER_LADDER
        assert spec.procs == PROCS_SWEPT
        assert spec.max_attempts == 3

    def test_knobs_flow_through(self):
        spec = SweepSpec.from_cli_args(self._args(
            profile="quick", ladder=(4 * KB, 8 * KB), procs=(1, 2),
            no_instrument=True, no_fused=True, jobs=3, retries=0,
            timeout=2.5, backoff=0.1))
        assert spec.ladder == (4 * KB, 8 * KB)
        assert spec.procs == (1, 2)
        assert not spec.instrument and not spec.fused
        assert spec.jobs == 3
        assert spec.max_attempts == 1
        assert spec.point_timeout == 2.5
        assert spec.retry_backoff == 0.1

    def test_multiprogramming_dispatch(self):
        spec = SweepSpec.from_cli_args(self._args(
            benchmark="multiprogramming", profile="quick"))
        assert spec.kind == "multiprogramming"

    def test_known_benchmarks_cover_cli_choices(self):
        assert "multiprogramming" in KNOWN_BENCHMARKS
        assert set(KNOWN_BENCHMARKS) >= {"barnes-hut", "mp3d", "cholesky"}
