"""Crash/kill integration tests for the sweep session.

These drive real subprocesses: a ``--jobs`` sweep SIGKILLed mid-grid
must resume from its journal and reproduce the uninterrupted run's
table bit-for-bit, and a terminated sweep process must not leave its
pool workers orphaned.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

SWEEP_ARGS = [sys.executable, "-m", "repro", "sweep", "mp3d",
              "--profile", "quick", "--procs", "2",
              "--ladder", "4KB,8KB,16KB,32KB,64KB,128KB",
              "--jobs", "2", "--backoff", "0"]


def _env(workdir: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_CACHE_DIR"] = str(workdir / "cache")
    env["REPRO_SESSION_DIR"] = str(workdir / "sessions")
    env["REPRO_TRACE_DIR"] = str(workdir / "traces")
    return env


def _table(output: str) -> str:
    """The final per-point table (everything from its title on)."""
    index = output.index("mp3d: sweep points")
    return output[index:].strip()


def _summary_counts(output: str) -> dict:
    match = re.search(
        r"points: (\d+) total -- (\d+) computed, (\d+) replayed, "
        r"(\d+) analytical, (\d+) cached, (\d+) journaled, "
        r"(\d+) retries, (\d+) quarantined", output)
    assert match, f"no summary line in output:\n{output}"
    keys = ("total", "computed", "replayed", "analytical", "cached",
            "journaled", "retries", "quarantined")
    return dict(zip(keys, map(int, match.groups())))


def _pid_gone(pid: int) -> bool:
    """True if ``pid`` no longer runs (reaped, or a zombie awaiting
    its reparented reap)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    try:
        with open(f"/proc/{pid}/stat") as stat:
            return stat.read().rsplit(")", 1)[1].split()[0] == "Z"
    except OSError:
        return True


def _wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.1)
    return predicate()


class TestKillAndResume:
    def test_sigkilled_sweep_resumes_bit_identically(self, tmp_path):
        """SIGKILL a --jobs sweep after its first journaled point; the
        --resume run recomputes only unjournaled points and the final
        table equals an uninterrupted run's."""
        workdir = tmp_path / "killed"
        process = subprocess.Popen(
            SWEEP_ARGS, env=_env(workdir), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True, bufsize=1,
            start_new_session=True)
        try:
            # Progress lines land as each point's completion is
            # journaled; kill the whole process group on the first one.
            saw_point = False
            for line in process.stdout:
                if "computed" in line and "] procs=" in line:
                    saw_point = True
                    break
            assert saw_point, "sweep finished output without progress"
            os.killpg(process.pid, signal.SIGKILL)
        finally:
            process.wait(timeout=30)
            process.stdout.close()
        assert process.returncode == -signal.SIGKILL

        # The journal survived the kill with at least one done point.
        journals = list((workdir / "sessions").glob("*.json"))
        assert len(journals) == 1
        payload = json.loads(journals[0].read_text())
        done_points = [entry for entry in payload["points"].values()
                       if entry["status"] == "done"]
        assert done_points

        resumed = subprocess.run(
            SWEEP_ARGS + ["--resume"], env=_env(workdir),
            capture_output=True, text=True, timeout=300)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        counts = _summary_counts(resumed.stdout)
        assert counts["total"] == 6
        assert counts["quarantined"] == 0
        # Journaled points were restored, not recomputed.
        assert counts["journaled"] >= len(done_points) >= 1
        assert counts["computed"] <= 6 - counts["journaled"]

        baseline = subprocess.run(
            SWEEP_ARGS, env=_env(tmp_path / "pristine"),
            capture_output=True, text=True, timeout=300)
        assert baseline.returncode == 0, (baseline.stdout
                                          + baseline.stderr)
        assert _table(resumed.stdout) == _table(baseline.stdout)


class TestSignalAwarePoolShutdown:
    CHILD = """
import os, signal, sys
from repro.experiments.runner import _worker_pool
pool = _worker_pool(2)
for future in [pool.submit(os.getpid) for _ in range(4)]:
    future.result()
print("WORKERS " + " ".join(
    str(process.pid) for process in pool._processes.values()),
    flush=True)
signal.pause()
"""

    def test_sigterm_kills_pool_workers(self, tmp_path):
        """atexit never fires on a fatal signal; the runner's signal
        hooks must terminate the worker processes before the parent
        dies, or a killed sweep leaves orphans simulating forever."""
        process = subprocess.Popen(
            [sys.executable, "-c", self.CHILD], env=_env(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, bufsize=1, start_new_session=True)
        try:
            line = process.stdout.readline()
            assert line.startswith("WORKERS "), line
            workers = [int(pid) for pid in line.split()[1:]]
            assert len(workers) == 2
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=15) == -signal.SIGTERM
        finally:
            process.stdout.close()
            if process.poll() is None:
                os.killpg(process.pid, signal.SIGKILL)
                process.wait(timeout=15)
        for pid in workers:
            assert _wait_until(lambda: _pid_gone(pid)), \
                f"worker {pid} survived its parent's SIGTERM"
