"""Tests for the Section 3.1 pipelines, on synthetic sweeps."""

import pytest

from repro.core.config import KB
from repro.experiments.parallel import (PAPER_TABLE3, PAPER_TABLE4,
                                        invalidation_series,
                                        normalized_execution_times,
                                        read_miss_rate_table, render_figure,
                                        render_miss_rates, render_speedups,
                                        self_relative_speedup,
                                        speedup_table)
from repro.experiments.runner import PAPER_LADDER, PROCS_SWEPT, RunStats


def synthetic_sweep():
    """A sweep whose execution time halves per processor doubling and
    shrinks 10% per ladder step."""
    sweep = {}
    for size_index, size in enumerate(PAPER_LADDER):
        for procs in PROCS_SWEPT:
            time = int(1_000_000 * (0.9 ** size_index) / procs)
            sweep[(procs, size)] = RunStats(
                execution_time=time,
                read_miss_rate=0.10 / procs + 0.01 * size_index,
                miss_rate=0.1, invalidations=100 + procs,
                reads=1000, writes=300, events=2000)
    return sweep


class TestNormalizedTimes:
    def test_base_config_is_one(self):
        curves = normalized_execution_times(synthetic_sweep())
        assert dict(curves[8])[512 * KB] == pytest.approx(1.0)

    def test_curves_cover_the_ladder(self):
        curves = normalized_execution_times(synthetic_sweep())
        for procs in PROCS_SWEPT:
            assert [size for size, _ in curves[procs]] == list(PAPER_LADDER)


class TestSpeedupTable:
    def test_relative_to_one_processor(self):
        table = speedup_table(synthetic_sweep())
        for size in PAPER_LADDER:
            assert table[size][0] == pytest.approx(1.0)
            assert table[size][3] == pytest.approx(8.0, rel=1e-4)

    def test_self_relative_speedup(self):
        assert self_relative_speedup(synthetic_sweep(), 4 * KB) == \
            pytest.approx(8.0, rel=1e-4)


class TestMissRateTable:
    def test_percentages(self):
        table = read_miss_rate_table(synthetic_sweep(), sizes=(4 * KB,))
        assert table[4 * KB][0] == pytest.approx(10.0)
        assert table[4 * KB][3] == pytest.approx(10.0 / 8)


class TestInvalidations:
    def test_series_ordering(self):
        series = invalidation_series(synthetic_sweep(), 4 * KB)
        assert series == (101, 102, 104, 108)


class TestRenderers:
    def test_render_figure_mentions_every_size(self):
        text = render_figure("barnes-hut", synthetic_sweep())
        for size in ("4 KB", "512 KB"):
            assert size in text

    def test_render_speedups_includes_paper_column(self):
        text = render_speedups("barnes-hut", synthetic_sweep(),
                               PAPER_TABLE3)
        assert "paper" in text
        assert "12.5" in text   # the paper's 8-proc 512 KB speedup

    def test_render_miss_rates(self):
        text = render_miss_rates("barnes-hut", synthetic_sweep(),
                                 PAPER_TABLE4)
        assert "%" in text
        assert "7.96" in text


class TestPaperConstants:
    def test_table3_shape(self):
        assert set(PAPER_TABLE3) == set(PAPER_LADDER)
        for values in PAPER_TABLE3.values():
            assert values[0] == 1.0
            assert len(values) == 4

    def test_table4_shape(self):
        assert set(PAPER_TABLE4) == {8 * KB, 64 * KB, 256 * KB}
