"""Tests for the Table 5/6/7 and Section 4 pipelines."""

import pytest

from repro.core.config import KB
from repro.experiments.runner import RunStats
from repro.experiments.tables import (PAPER_TABLE6, PAPER_TABLE7,
                                      render_section4_costs, render_table5,
                                      render_table6, render_table7,
                                      surfaces_from_sweeps)


def synthetic_sweeps():
    """All four benchmarks with a 2x-win-per-processor-doubling model."""
    sweeps = {}
    for benchmark in ("barnes-hut", "mp3d", "cholesky",
                      "multiprogramming"):
        sweep = {}
        for procs in (1, 2, 4, 8):
            for size_kb in (32, 64, 128, 512):
                time = int(1_000_000 / procs * (64 / size_kb) ** 0.2)
                sweep[(procs, size_kb * KB)] = RunStats(
                    execution_time=time, read_miss_rate=0.1,
                    miss_rate=0.1, invalidations=0, reads=1, writes=1,
                    events=1)
        sweeps[benchmark] = sweep
    return sweeps


class TestSurfaces:
    def test_conversion_keeps_execution_times(self):
        sweeps = synthetic_sweeps()
        surfaces = surfaces_from_sweeps(sweeps)
        key = (1, 64 * KB)
        assert surfaces["mp3d"][key] == \
            sweeps["mp3d"][key].execution_time


class TestRenderers:
    def test_table5_includes_all_benchmarks(self):
        text = render_table5()
        for name in ("barnes-hut", "mp3d", "cholesky",
                     "multiprogramming"):
            assert name in text

    def test_table6_summary_line(self):
        text = render_table6(synthetic_sweeps())
        assert "cost/performance" in text
        assert "paper" in text

    def test_table7(self):
        text = render_table7(synthetic_sweeps())
        assert "8 procs/128 KB" in text

    def test_section4_costs(self):
        text = render_section4_costs()
        assert "204" in text
        assert "C4" in text


class TestPaperConstants:
    def test_table6_values(self):
        assert PAPER_TABLE6["barnes-hut"] == (13.1, 5.8)
        assert PAPER_TABLE6["cholesky"] == (3.9, 3.4)

    def test_table7_values(self):
        assert PAPER_TABLE7["mp3d"] == (2.9, 1.5)
