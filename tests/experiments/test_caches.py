"""Cache-robustness and worker-pool tests for the sweep runner.

Covers the failure modes a long-lived on-disk cache actually meets:
corrupt or truncated entries (killed writers, disk trouble), digest
collisions, and concurrent ``--jobs`` writers racing on one directory.
"""

import logging
from array import array

import pytest

from repro.experiments import runner
from repro.experiments.runner import (ExperimentProfile, ResultCache,
                                      RunStats, _worker_pool)
from repro.trace.packed import OP_COMPUTE, OP_READ
from repro.trace.record import TraceCache


@pytest.fixture
def tiny_profile():
    return ExperimentProfile(
        name="tiny", ladder_scale=8,
        barnes_bodies=32, barnes_steps=1,
        mp3d_particles=60, mp3d_steps=1,
        cholesky_n=64,
        multiprog_instructions=2000, multiprog_quantum=500)


def make_stats(**overrides):
    base = dict(execution_time=123, read_miss_rate=0.25, miss_rate=0.125,
                invalidations=0, reads=80, writes=20, events=100,
                instrument=None)
    base.update(overrides)
    return RunStats(**base)


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = make_stats(instrument={"bus_peak": 0.5})
        cache.put("key", stats)
        assert cache.get("key") == stats
        assert cache.get("other") is None

    def test_corrupt_entry_is_deleted_and_warned_once(self, tmp_path,
                                                      caplog):
        cache = ResultCache(tmp_path)
        for key in ("a", "b"):
            cache.put(key, make_stats())
            cache._path(key).write_text("{not json")
        with caplog.at_level(logging.WARNING, logger=runner.__name__):
            assert cache.get("a") is None
            assert cache.get("b") is None
        assert not cache._path("a").exists()
        assert not cache._path("b").exists()
        warnings = [rec for rec in caplog.records
                    if "corrupt" in rec.getMessage()]
        assert len(warnings) == 1
        # A healthy rewrite heals the entry.
        cache.put("a", make_stats())
        assert cache.get("a") == make_stats()

    def test_wrong_shape_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", make_stats())
        cache._path("a").write_text('{"unexpected": 1}')
        assert cache.get("a") is None
        assert not cache._path("a").exists()

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", make_stats())
        leftovers = [p for p in tmp_path.iterdir()
                     if p.suffix != ".json"]
        assert leftovers == []


class TestTraceCache:
    def tape(self):
        return {0: array("q", [OP_READ, 64, OP_COMPUTE, 3])}

    def test_round_trip(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.put("sig", self.tape())
        streams = cache.get("sig")
        assert streams is not None
        assert dict(streams)[0].tolist() == self.tape()[0].tolist()
        assert cache.get("other-sig") is None

    def test_garbage_file_is_deleted_and_warned(self, tmp_path, caplog):
        cache = TraceCache(tmp_path)
        cache.put("sig", self.tape())
        path = cache._path("sig")
        path.write_bytes(b"not a trace at all")
        with caplog.at_level(logging.WARNING,
                             logger="repro.trace.record"):
            assert cache.get("sig") is None
        assert not path.exists()
        assert any("corrupt" in rec.getMessage()
                   for rec in caplog.records)

    def test_truncated_payload_is_deleted(self, tmp_path):
        """Chopping whole int64s off the stream leaves a parseable file
        whose payload no longer matches the descriptor -- it must be
        discarded, not replayed short."""
        cache = TraceCache(tmp_path)
        cache.put("sig", self.tape())
        path = cache._path("sig")
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        assert cache.get("sig") is None
        assert not path.exists()

    def test_signature_collision_is_a_plain_miss(self, tmp_path,
                                                 monkeypatch):
        """A well-formed file recorded under another signature is a
        digest collision, not damage: report a miss but keep the file."""
        cache = TraceCache(tmp_path)
        fixed = tmp_path / "fixed.trace"
        monkeypatch.setattr(TraceCache, "_path",
                            lambda self, signature: fixed)
        cache.put("sig-a", self.tape())
        assert cache.get("sig-b") is None
        assert fixed.exists()
        assert cache.get("sig-a") is not None


class TestWorkerPool:
    def test_pool_is_reused_across_calls(self):
        pool = _worker_pool(2)
        try:
            assert _worker_pool(2) is pool
            # Changing the job count rebuilds the pool.
            assert _worker_pool(1) is not pool
        finally:
            runner._shutdown_pool()

    def test_parallel_grid_matches_serial(self, tmp_path, tiny_profile):
        kwargs = dict(ladder=(32768, 65536), procs=(1, 2),
                      instrument=False)
        serial = runner.multiprogramming_sweep(
            tiny_profile, ResultCache(tmp_path / "serial"), jobs=1,
            **kwargs)
        try:
            parallel = runner.multiprogramming_sweep(
                tiny_profile, ResultCache(tmp_path / "parallel"), jobs=2,
                **kwargs)
        finally:
            runner._shutdown_pool()
        assert parallel == serial
