"""Tests for the SVG figure renderer."""

import xml.etree.ElementTree as ElementTree

import pytest

from repro.experiments.svgfig import render_svg_chart, save_svg_chart

SERIES = {"1 proc": [(0, 10.0), (1, 5.0), (2, 1.0)],
          "8 procs": [(0, 4.0), (1, 2.0), (2, 0.5)]}
LABELS = ["4KB", "8KB", "16KB"]


def parse(svg):
    return ElementTree.fromstring(svg)


class TestRenderSvgChart:
    def test_produces_well_formed_xml(self):
        root = parse(render_svg_chart("Figure", SERIES, LABELS))
        assert root.tag.endswith("svg")

    def test_one_polyline_per_series(self):
        root = parse(render_svg_chart("Figure", SERIES, LABELS))
        polylines = root.findall(
            ".//{http://www.w3.org/2000/svg}polyline")
        assert len(polylines) == len(SERIES)

    def test_one_marker_per_point(self):
        root = parse(render_svg_chart("Figure", SERIES, LABELS))
        circles = root.findall(".//{http://www.w3.org/2000/svg}circle")
        assert len(circles) == sum(len(pts) for pts in SERIES.values())

    def test_labels_and_title_present(self):
        svg = render_svg_chart("My Figure & Title", SERIES, LABELS)
        assert "My Figure &amp; Title" in svg
        for label in LABELS:
            assert label in svg
        for name in SERIES:
            assert name in svg

    def test_larger_values_sit_higher(self):
        """y coordinates must decrease as values grow."""
        svg = render_svg_chart("f", {"s": [(0, 1.0), (1, 100.0)]},
                               ["a", "b"], log_y=True)
        root = parse(svg)
        circles = root.findall(".//{http://www.w3.org/2000/svg}circle")
        y_small, y_large = (float(c.get("cy")) for c in circles)
        assert y_large < y_small

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            render_svg_chart("f", {}, LABELS)
        with pytest.raises(ValueError):
            render_svg_chart("f", {"s": [(0, -1.0)]}, LABELS, log_y=True)
        with pytest.raises(ValueError):
            render_svg_chart("f", {"s": [(9, 1.0)]}, LABELS)

    def test_constant_series_renders(self):
        svg = render_svg_chart("f", {"s": [(0, 2.0), (1, 2.0)]},
                               ["a", "b"])
        assert "polyline" in svg

    def test_save_writes_the_file(self, tmp_path):
        path = save_svg_chart(tmp_path / "fig.svg", "f", SERIES, LABELS)
        assert path.exists()
        parse(path.read_text())
