"""Tests for the sweep runner and result cache."""

import pytest

from repro.core.config import KB, SystemConfig
from repro.experiments.runner import (PAPER_LADDER, PROFILES, ResultCache,
                                      RunStats, active_profile,
                                      parallel_sweep, run_point)


@pytest.fixture
def tiny_profile():
    from repro.experiments.runner import ExperimentProfile
    return ExperimentProfile(
        name="tiny", ladder_scale=8,
        barnes_bodies=32, barnes_steps=1,
        mp3d_particles=60, mp3d_steps=1,
        cholesky_n=64,
        multiprog_instructions=2000, multiprog_quantum=500)


class TestProfiles:
    def test_known_profiles(self):
        assert set(PROFILES) == {"quick", "paper"}
        for profile in PROFILES.values():
            assert profile.ladder_scale >= 1

    def test_scaled_ladder(self):
        ladder = PROFILES["quick"].scaled_ladder()
        assert ladder[0] == 4 * KB // 8
        assert ladder[-1] == 512 * KB // 8
        assert len(ladder) == len(PAPER_LADDER)

    def test_active_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "quick")
        assert active_profile().name == "quick"
        monkeypatch.setenv("REPRO_PROFILE", "bogus")
        with pytest.raises(ValueError):
            active_profile()

    def test_workload_dispatch(self, tiny_profile):
        for name in ("barnes-hut", "mp3d", "cholesky",
                     "multiprogramming"):
            assert tiny_profile.workload(name) is not None
        with pytest.raises(ValueError):
            tiny_profile.workload("linpack")


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = RunStats(execution_time=100, read_miss_rate=0.5,
                         miss_rate=0.4, invalidations=7, reads=10,
                         writes=5, events=20)
        assert cache.get("key") is None
        cache.put("key", stats)
        assert cache.get("key") == stats

    def test_distinct_keys_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = RunStats(1, 0.0, 0.0, 0, 0, 0, 0)
        cache.put("a", stats)
        assert cache.get("b") is None

    def test_corrupt_entries_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = RunStats(1, 0.0, 0.0, 0, 0, 0, 0)
        cache.put("a", stats)
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        assert cache.get("a") is None


class TestRunPoint:
    def test_run_point_populates_cache(self, tmp_path, tiny_profile):
        cache = ResultCache(tmp_path)
        config = SystemConfig.paper_parallel(1, 1 * KB)
        first = run_point("mp3d", tiny_profile, config, cache)
        assert first.execution_time > 0
        assert first.reads > 0
        # A second call is served from the cache (same values).
        second = run_point("mp3d", tiny_profile, config, cache)
        assert second == first
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_sweep_covers_the_grid(self, tmp_path, tiny_profile):
        cache = ResultCache(tmp_path)
        sweep = parallel_sweep("mp3d", tiny_profile, cache,
                               ladder=(4 * KB, 64 * KB), procs=(1, 2))
        assert set(sweep) == {(1, 4 * KB), (2, 4 * KB),
                              (1, 64 * KB), (2, 64 * KB)}

    def test_run_point_carries_instrument_digest(self, tmp_path,
                                                 tiny_profile):
        cache = ResultCache(tmp_path)
        config = SystemConfig.paper_parallel(1, 1 * KB)
        stats = run_point("mp3d", tiny_profile, config, cache)
        assert stats.instrument is not None
        assert stats.instrument["bus_transactions"] > 0
        assert "bus_peak_utilization" in stats.instrument
        # The digest survives the JSON cache round trip.
        cached = run_point("mp3d", tiny_profile, config, cache)
        assert cached.instrument == stats.instrument

    def test_instrument_digest_excluded_from_equality(self):
        """Pre-v4 cache payloads deserialize to instrument=None and must
        still compare equal on the physics."""
        a = RunStats(1, 0.0, 0.0, 0, 0, 0, 0, instrument=None)
        b = RunStats(1, 0.0, 0.0, 0, 0, 0, 0, instrument={"x": 1.0})
        assert a == b


class TestParallelJobs:
    def test_parallel_matches_serial_and_shares_cache(self, tmp_path,
                                                      tiny_profile):
        """jobs=2 computes the same stats as a serial sweep and writes
        cache entries a later serial sweep is fully served from."""
        cache = ResultCache(tmp_path)
        grid = dict(ladder=(2 * KB, 4 * KB), procs=(1, 2))
        parallel = parallel_sweep("mp3d", tiny_profile, cache, jobs=2,
                                  **grid)
        entries = len(list(tmp_path.glob("*.json")))
        assert entries == 4
        serial = parallel_sweep("mp3d", tiny_profile, cache, jobs=None,
                                **grid)
        assert serial == parallel
        # Fully cache-served: no new entries were written.
        assert len(list(tmp_path.glob("*.json"))) == entries

    def test_jobs_one_is_serial(self, tmp_path, tiny_profile):
        cache = ResultCache(tmp_path)
        sweep = parallel_sweep("mp3d", tiny_profile, cache, jobs=1,
                               ladder=(2 * KB,), procs=(1,))
        assert sweep[(1, 2 * KB)].execution_time > 0


class TestInstrumentFlag:
    def test_instrument_false_skips_digest(self, tmp_path, tiny_profile):
        cache = ResultCache(tmp_path)
        config = SystemConfig.paper_parallel(1, 1 * KB)
        bare = run_point("mp3d", tiny_profile, config, cache,
                         instrument=False)
        assert bare.instrument is None
        # The digest-less payload must not shadow the instrumented one.
        instrumented = run_point("mp3d", tiny_profile, config, cache)
        assert instrumented.instrument is not None
        # Physics identical either way (probes must not perturb stats).
        assert instrumented == bare
        assert instrumented.events == bare.events


class TestTraceCachedSweep:
    def test_deterministic_row_records_once_and_replays(self, tmp_path,
                                                        tiny_profile):
        """The single-processor multiprogramming row is recorded at one
        ladder rung and replayed at the others -- with statistics equal
        to simulating each point directly."""
        from repro.experiments.runner import (_stats_key,
                                              multiprogramming_sweep)
        from repro.trace.record import TraceCache
        ladder = (2 * KB, 8 * KB, 32 * KB)
        trace_dir = tmp_path / "traces"
        sweep = multiprogramming_sweep(
            tiny_profile, ResultCache(tmp_path / "results"),
            ladder=ladder, procs=(1,),
            trace_cache=TraceCache(trace_dir))
        assert set(sweep) == {(1, size) for size in ladder}
        # One recording serves the whole row.
        assert len(list(trace_dir.glob("*.trace"))) == 1
        # Every point equals a direct, replay-free simulation.
        icache = max(16 * KB // tiny_profile.ladder_scale, 512)
        for (procs, paper_bytes), stats in sweep.items():
            config = SystemConfig.paper_multiprogramming(
                procs, paper_bytes // tiny_profile.ladder_scale
            ).with_updates(icache_size=icache)
            direct = run_point("multiprogramming", tiny_profile, config,
                               cache=None)
            assert direct == stats
            assert direct.events == stats.events

    def test_nondeterministic_rows_bypass_trace_cache(self, tmp_path,
                                                      tiny_profile):
        """Multi-processor rows race on the run queue, so they must
        simulate normally and leave no recordings behind."""
        from repro.experiments.runner import multiprogramming_sweep
        from repro.trace.record import TraceCache
        trace_dir = tmp_path / "traces"
        sweep = multiprogramming_sweep(
            tiny_profile, ResultCache(tmp_path / "results"),
            ladder=(2 * KB, 8 * KB), procs=(2,),
            trace_cache=TraceCache(trace_dir))
        assert len(sweep) == 2
        assert list(trace_dir.glob("*.trace")) == []
