"""Tests for the candidate encoding and design-space operators."""

import random

import pytest

from repro.core.config import KB, SystemConfig
from repro.experiments.spec import point_cache_key
from repro.optimize.space import (Candidate, DesignSpace,
                                  PAPER_RECOMMENDATIONS)


class TestCandidate:
    def test_variants_omit_presets(self):
        assert Candidate(2, 32 * KB).variants() == ()

    def test_variants_sorted_pairs(self):
        candidate = Candidate(2, 32 * KB, associativity=2,
                              protocol="mesi")
        assert candidate.variants() == (("associativity", 2),
                                        ("protocol", "mesi"))

    def test_label(self):
        assert Candidate(2, 32 * KB).label() == "2p/32KB"
        assert Candidate(4, 64 * KB, write_buffer_depth=8).label() == \
            "4p/64KB[wbuf=8]"

    def test_area_anchors_on_paper_designs(self):
        """Preset-knob candidates at the paper design points price at
        exactly the quoted cluster areas."""
        assert Candidate(1, 64 * KB).area_mm2() == pytest.approx(204.0)
        assert Candidate(2, 32 * KB).area_mm2() == pytest.approx(279.0)
        assert Candidate(4, 64 * KB).area_mm2() == pytest.approx(594.0)
        assert Candidate(8, 128 * KB).area_mm2() == pytest.approx(1224.0)

    def test_knobs_change_area(self):
        base = Candidate(2, 32 * KB).area_mm2()
        assert Candidate(2, 32 * KB,
                         associativity=2).area_mm2() > base
        assert Candidate(2, 32 * KB,
                         write_buffer_depth=8).area_mm2() > base

    def test_ordering_is_total(self):
        candidates = [Candidate(4, 64 * KB), Candidate(2, 32 * KB),
                      Candidate(2, 32 * KB, protocol="mesi")]
        ordered = sorted(candidates)
        assert ordered[-1] == Candidate(4, 64 * KB)
        assert ordered == sorted(reversed(candidates))

    def test_variant_cache_keys_distinct_but_defaults_unchanged(
            self, tiny_profile):
        """A variant candidate's config gets its own cache-key suffix;
        a preset candidate keys exactly like the pre-optimizer format."""
        scale = tiny_profile.ladder_scale
        preset = SystemConfig.paper_parallel(2, 32 * KB // scale)
        variant = preset.with_updates(associativity=2)
        preset_key = point_cache_key("mp3d", tiny_profile, preset)
        variant_key = point_cache_key("mp3d", tiny_profile, variant)
        assert "assoc" not in preset_key
        assert "|assoc=2" in variant_key
        assert variant_key != preset_key


class TestDesignSpace:
    def test_paper_seeds_are_legal(self, tiny_profile):
        space = DesignSpace(tiny_profile)
        assert space.seeds() == PAPER_RECOMMENDATIONS

    def test_rejects_unpriceable_procs(self, tiny_profile):
        with pytest.raises(ValueError, match="floorplan"):
            DesignSpace(tiny_profile, procs=(1, 2, 3))

    def test_overbanked_candidate_is_illegal(self, tiny_profile):
        """At tiny simulated sizes the smallest ladder rungs cannot
        host eight banks per processor on eight processors."""
        space = DesignSpace(tiny_profile)
        candidate = Candidate(8, 4 * KB, banks_per_processor=8)
        assert not space.legal(candidate)
        assert space.legal(Candidate(8, 512 * KB,
                                     banks_per_processor=8))

    def test_explore_knobs_off_pins_presets(self, tiny_profile):
        space = DesignSpace(tiny_profile, explore_knobs=False)
        rng = random.Random(0)
        for _ in range(16):
            candidate = space.sample(rng)
            assert candidate is not None
            assert candidate.variants() == ()

    def test_operators_deterministic_and_legal(self, tiny_profile):
        space = DesignSpace(tiny_profile)

        def walk(seed):
            rng = random.Random(seed)
            trail = []
            current = space.sample(rng)
            for _ in range(24):
                trail.append(current)
                assert space.legal(current)
                other = space.sample(rng)
                current = space.crossover(
                    space.mutate(current, rng), other, rng)
            return trail

        assert walk(7) == walk(7)
        assert walk(7) != walk(8)
