"""Shared fixtures for the design-space optimizer tests."""

import pytest

from repro.experiments.spec import ExperimentProfile


@pytest.fixture
def tiny_profile():
    return ExperimentProfile(
        name="tiny", ladder_scale=8,
        barnes_bodies=32, barnes_steps=1,
        mp3d_particles=60, mp3d_steps=1,
        cholesky_n=64,
        multiprog_instructions=2000, multiprog_quantum=500)


@pytest.fixture
def counting_simulator(monkeypatch):
    """Count every real simulator invocation."""
    from repro.experiments import runner
    real = runner.run_simulation
    calls = []

    def counted(config, application, **kwargs):
        calls.append(type(application).__name__)
        return real(config, application, **kwargs)

    monkeypatch.setattr(runner, "run_simulation", counted)
    return calls
