"""Tests for the seeded Pareto search: determinism, warmth, verdicts."""

import pytest

from repro.core.config import KB
from repro.experiments.runner import ResultCache
from repro.optimize import (BudgetLedger, DesignSpace, FunnelEvaluator,
                            optimize, pareto_front, render_frontier)
from repro.optimize.space import Candidate, PAPER_RECOMMENDATIONS


def make_evaluator(profile, tmp_path, **kwargs):
    kwargs.setdefault("cache", ResultCache(tmp_path / "results"))
    kwargs.setdefault("session_dir", tmp_path / "sessions")
    kwargs.setdefault("benchmarks", ("mp3d",))
    return FunnelEvaluator(profile, **kwargs)


def run_search(profile, tmp_path, seed=0, **kwargs):
    space = DesignSpace(profile)
    evaluator = make_evaluator(profile, tmp_path)
    return optimize(space, evaluator, seed=seed, generations=2,
                    population_size=6, promote=2, **kwargs)


def frontier_key(result):
    return tuple((p.evaluation.candidate, p.evaluation.cost_performance,
                  p.evaluation.mean_normalized_time)
                 for p in result.frontier)


class TestParetoFront:
    def test_dominated_points_drop(self, tiny_profile, tmp_path):
        evaluator = make_evaluator(tiny_profile, tmp_path)
        evals = evaluator.evaluate([Candidate(1, 4 * KB),
                                    Candidate(1, 8 * KB),
                                    Candidate(2, 8 * KB)], "fused")
        front = pareto_front(list(evals))
        assert front  # something always survives
        for kept in front:
            assert not any(other.dominates(kept) for other in evals)
        # Sorted by ascending area.
        areas = [e.relative_area for e in front]
        assert areas == sorted(areas)


class TestOptimize:
    def test_same_seed_same_frontier(self, tiny_profile, tmp_path):
        first = run_search(tiny_profile, tmp_path / "a", seed=3)
        second = run_search(tiny_profile, tmp_path / "b", seed=3)
        assert frontier_key(first) == frontier_key(second)
        assert first.budget == second.budget

    def test_warm_rerun_zero_simulator_calls(self, tiny_profile,
                                             tmp_path,
                                             counting_simulator):
        cold = run_search(tiny_profile, tmp_path, seed=1)
        assert counting_simulator  # the cold pass simulated something
        counting_simulator.clear()
        warm = run_search(tiny_profile, tmp_path, seed=1)
        assert counting_simulator == []
        assert frontier_key(cold) == frontier_key(warm)

    def test_paper_recommendations_always_priced(self, tiny_profile,
                                                 tmp_path):
        result = run_search(tiny_profile, tmp_path, seed=0)
        priced = {v.candidate for v in result.verdicts}
        assert priced == set(PAPER_RECOMMENDATIONS)
        # Every recommendation is on the frontier or dominated by a
        # frontier point, so the search rediscovers (or beats) them.
        assert result.rediscovers_paper()
        for verdict in result.verdicts:
            assert verdict.on_frontier or verdict.dominated_by is not None

    def test_budget_exhaustion_is_graceful(self, tiny_profile, tmp_path):
        space = DesignSpace(tiny_profile)
        evaluator = make_evaluator(
            tiny_profile, tmp_path,
            budget=BudgetLedger({"fused": 3}))
        result = optimize(space, evaluator, seed=0, generations=3,
                          population_size=6, promote=2)
        assert result.stopped_early
        assert not result.rediscovers_paper() or result.verdicts

    def test_confirm_tier_reprices_frontier(self, tiny_profile,
                                            tmp_path):
        result = run_search(tiny_profile, tmp_path, seed=0)
        assert all(p.evaluation.tier == "full" for p in result.frontier)
        assert result.budget["full"]["spent"] > 0

    def test_render_frontier_mentions_designs(self, tiny_profile,
                                              tmp_path):
        result = run_search(tiny_profile, tmp_path, seed=0)
        text = render_frontier(result)
        assert "Pareto frontier" in text
        assert "2p/32KB" in text
        assert "REDISCOVERS" in text
        assert "Funnel budget" in text
