"""Tests for the funnel evaluator and its budget ledger."""

import pytest

from repro.core.config import KB
from repro.experiments.runner import ResultCache
from repro.optimize.evaluate import (BudgetExhausted, BudgetLedger,
                                     FunnelEvaluator)
from repro.optimize.space import Candidate


class TestBudgetLedger:
    def test_defaults(self):
        ledger = BudgetLedger()
        assert ledger.remaining("analytical") == 4096
        assert ledger.spent("fused") == 0

    def test_charge_and_exhaust(self):
        ledger = BudgetLedger({"fused": 3})
        ledger.charge("fused", 2)
        assert ledger.remaining("fused") == 1
        with pytest.raises(BudgetExhausted) as info:
            ledger.charge("fused", 2)
        # A refused charge is not booked.
        assert ledger.spent("fused") == 2
        assert info.value.tier == "fused"

    def test_uncapped_tier(self):
        ledger = BudgetLedger({"full": None})
        assert ledger.remaining("full") is None
        ledger.charge("full", 10_000)

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown budget tier"):
            BudgetLedger({"quantum": 1})

    def test_summary_shape(self):
        summary = BudgetLedger({"fused": 7}).summary()
        assert summary["fused"] == {"spent": 0, "cap": 7}


@pytest.fixture
def evaluator(tiny_profile, tmp_path):
    return FunnelEvaluator(
        tiny_profile, benchmarks=("mp3d",),
        cache=ResultCache(tmp_path / "results"),
        session_dir=tmp_path / "sessions")


class TestFunnelEvaluator:
    def test_parallel_multiproc_skips_analytical_tier(self, evaluator):
        """The strict-parallel policy applied up front: known-bad
        surrogate rows route straight to the fused tier."""
        assert evaluator._effective_tier("analytical", "mp3d", 2) == \
            "fused"
        assert evaluator._effective_tier("analytical", "mp3d", 1) == \
            "analytical"
        assert evaluator._effective_tier(
            "analytical", "multiprogramming", 2) == "analytical"
        assert evaluator._effective_tier("fused", "mp3d", 2) == "fused"

    def test_analytical_specs_carry_strict_parallel(self, evaluator):
        spec = evaluator._build_spec("mp3d", 1, (4 * KB,), (),
                                     "analytical")
        assert spec.strict_parallel and not spec.instrument
        exact = evaluator._build_spec("mp3d", 2, (4 * KB,), (), "fused")
        assert not exact.strict_parallel and exact.instrument

    def test_evaluation_scores_and_memoizes(self, evaluator):
        candidates = [Candidate(1, 32 * KB), Candidate(2, 32 * KB)]
        first = evaluator.evaluate(candidates, "fused")
        assert [e.candidate for e in first] == sorted(candidates)
        one, two = first
        assert two.mean_normalized_time < one.mean_normalized_time
        assert two.relative_area > one.relative_area
        assert two.cost_performance == pytest.approx(
            two.mean_normalized_time * two.relative_area)

        spent = evaluator.budget.spent("fused")
        again = evaluator.evaluate(candidates, "fused")
        assert again == first
        assert evaluator.budget.spent("fused") == spent

    def test_budget_exhaustion_stops_cleanly(self, tiny_profile,
                                             tmp_path):
        evaluator = FunnelEvaluator(
            tiny_profile, benchmarks=("mp3d",),
            budget=BudgetLedger({"fused": 1}),
            cache=ResultCache(tmp_path / "results"),
            session_dir=tmp_path / "sessions")
        with pytest.raises(BudgetExhausted):
            evaluator.evaluate([Candidate(1, 4 * KB),
                                Candidate(2, 8 * KB)], "fused")

    def test_rejects_unknown_tier(self, evaluator):
        with pytest.raises(ValueError, match="tier"):
            evaluator.evaluate([Candidate(1, 4 * KB)], "supreme")
