"""Tests for the synchronization namespace."""

import pytest

from repro.workloads.sync import SyncNamespace


class TestSyncNamespace:
    def test_names_are_stable(self):
        ns = SyncNamespace()
        first = ns.lock("tree")
        assert ns.lock("tree") == first

    def test_ids_are_dense_per_kind(self):
        ns = SyncNamespace()
        assert ns.lock("a") == 0
        assert ns.lock("b") == 1
        assert ns.barrier("a") == 0   # separate namespace
        assert ns.queue("a") == 0

    def test_reverse_lookup(self):
        ns = SyncNamespace()
        ns.lock("alpha")
        ns.lock("beta")
        assert ns.lock_name(1) == "beta"
        with pytest.raises(KeyError):
            ns.lock_name(5)
