"""Tests for the simulated shared heap."""

import pytest
from hypothesis import given, strategies as st

from repro.workloads.memory import (ArrayRegion, HeapExhaustedError, Region,
                                    SharedHeap)


class TestRegion:
    def test_addr_and_bounds(self):
        region = Region("r", base=0x1000, size=64)
        assert region.addr(0) == 0x1000
        assert region.addr(63) == 0x103F
        assert region.end == 0x1040
        with pytest.raises(IndexError):
            region.addr(64)
        with pytest.raises(IndexError):
            region.addr(-1)

    def test_contains(self):
        region = Region("r", base=0x1000, size=64)
        assert region.contains(0x1000)
        assert region.contains(0x103F)
        assert not region.contains(0x1040)
        assert not region.contains(0xFFF)


class TestArrayRegion:
    def test_record_addressing(self):
        array = ArrayRegion("a", base=0x2000, count=10, record_size=48)
        assert array.record(0) == 0x2000
        assert array.record(1) == 0x2030
        assert array.record(2, field_offset=8) == 0x2068
        assert array.size == 480

    def test_record_bounds(self):
        array = ArrayRegion("a", base=0, count=4, record_size=16)
        with pytest.raises(IndexError):
            array.record(4)
        with pytest.raises(IndexError):
            array.record(0, field_offset=16)


class TestSharedHeap:
    def test_allocations_do_not_overlap(self):
        heap = SharedHeap()
        first = heap.alloc("a", 100)
        second = heap.alloc("b", 100)
        assert first.end <= second.base

    def test_alignment_defaults_to_a_cache_line(self):
        heap = SharedHeap()
        heap.alloc("pad", 7)
        region = heap.alloc("aligned", 64)
        assert region.base % 16 == 0

    def test_custom_alignment(self):
        heap = SharedHeap()
        heap.alloc("pad", 3)
        region = heap.alloc("page", 64, alignment=4096)
        assert region.base % 4096 == 0

    def test_duplicate_names_rejected(self):
        heap = SharedHeap()
        heap.alloc("x", 16)
        with pytest.raises(ValueError):
            heap.alloc("x", 16)

    def test_lookup_by_name(self):
        heap = SharedHeap()
        region = heap.alloc("x", 16)
        assert heap.region("x") is region

    def test_exhaustion(self):
        heap = SharedHeap(base=0, limit=1024)
        heap.alloc("big", 1000)
        with pytest.raises(HeapExhaustedError):
            heap.alloc("more", 1000)

    def test_rejects_nonsense(self):
        heap = SharedHeap()
        with pytest.raises(ValueError):
            heap.alloc("zero", 0)
        with pytest.raises(ValueError):
            heap.alloc("badalign", 16, alignment=3)
        with pytest.raises(ValueError):
            heap.alloc_array("badcount", 0, 8)
        with pytest.raises(ValueError):
            SharedHeap(alignment=12)
        with pytest.raises(ValueError):
            SharedHeap(base=100, limit=100)

    @given(st.lists(st.integers(min_value=1, max_value=4096),
                    min_size=1, max_size=40))
    def test_allocations_are_disjoint_and_ordered(self, sizes):
        heap = SharedHeap()
        regions = [heap.alloc(f"r{i}", size)
                   for i, size in enumerate(sizes)]
        for earlier, later in zip(regions, regions[1:]):
            assert earlier.end <= later.base
        assert heap.bytes_allocated >= sum(sizes)
