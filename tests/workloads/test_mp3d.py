"""Tests for the instrumented MP3D application."""

import pytest

from repro.core.config import KB, SystemConfig
from repro.simulation import run_simulation
from repro.trace.events import Read, Write
from repro.workloads.mp3d import MP3D, _MP3DRun


def small_config(procs=2, clusters=2):
    return SystemConfig(clusters=clusters, processors_per_cluster=procs,
                        scc_size=8 * KB)


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MP3D(n_particles=0)
        with pytest.raises(ValueError):
            MP3D(steps=0)
        with pytest.raises(ValueError):
            MP3D(grid=(1, 4, 4))
        with pytest.raises(ValueError):
            MP3D(collision_probability=1.5)

    def test_every_particle_is_assigned_once(self):
        app = MP3D(n_particles=100, steps=1)
        run = _MP3DRun(app, small_config())
        seen = sorted(p for mine in run.assignment for p in mine)
        assert seen == list(range(100))


class TestGeometry:
    def test_cell_index_in_range(self):
        app = MP3D(n_particles=200, steps=1)
        run = _MP3DRun(app, small_config())
        for particle in range(200):
            assert 0 <= run.cell_index_of(particle) < run.n_cells

    def test_particles_stay_in_the_tunnel(self):
        app = MP3D(n_particles=100, steps=4)
        config = SystemConfig(clusters=1, processors_per_cluster=1)
        run = _MP3DRun(app, config)
        from repro.core.system import MultiprocessorSystem
        from repro.trace.interleave import TimingInterleaver
        interleaver = TimingInterleaver(MultiprocessorSystem(config))
        interleaver.add_process(0, run.process(0))
        interleaver.run()
        assert (run.pos >= -1e-9).all()
        assert (run.pos <= 1.0 + 1e-9).all()


def iter_events(stream):
    """Flatten a trace stream, expanding packed chunks into events."""
    from repro.trace.packed import PackedChunk, decode_events
    for item in stream:
        if isinstance(item, PackedChunk):
            yield from decode_events(item.data)
        else:
            yield item


class TestTraceProperties:
    def test_addresses_stay_inside_allocations(self):
        app = MP3D(n_particles=60, steps=1)
        config = SystemConfig(clusters=1, processors_per_cluster=1)
        run = _MP3DRun(app, config)
        regions = (run.particle_region, run.cell_region,
                   run.globals_region, run.table_region)
        for event in iter_events(run.process(0)):
            if isinstance(event, (Read, Write)):
                assert any(r.contains(event.addr) for r in regions), \
                    hex(event.addr)

    def test_space_cells_are_written(self):
        """The migratory accumulator updates must appear in the trace --
        they are the invalidation source the paper studies."""
        app = MP3D(n_particles=60, steps=1)
        config = SystemConfig(clusters=1, processors_per_cluster=1)
        run = _MP3DRun(app, config)
        cell_writes = sum(
            1 for event in iter_events(run.process(0))
            if isinstance(event, Write)
            and run.cell_region.contains(event.addr))
        assert cell_writes >= 60  # several per particle-step


class TestDeterminism:
    def test_same_seed_reproduces(self):
        app = MP3D(n_particles=120, steps=2, seed=3)
        config = small_config()
        assert (run_simulation(config, app).execution_time
                == run_simulation(config, app).execution_time)


class TestArchitecturalBehaviour:
    def test_invalidations_flat_with_cluster_width(self):
        """Section 3.1.2: adding processors to a cluster does not raise
        inter-cluster invalidation traffic."""
        app = MP3D(n_particles=300, steps=2)
        narrow = run_simulation(SystemConfig.paper_parallel(1, 8 * KB), app)
        wide = run_simulation(SystemConfig.paper_parallel(4, 8 * KB), app)
        assert (wide.stats.total_invalidations
                < narrow.stats.total_invalidations * 1.4 + 50)

    def test_large_caches_scale_better_than_small(self):
        app = MP3D(n_particles=300, steps=2)

        def self_relative(size):
            slow = run_simulation(SystemConfig.paper_parallel(1, size), app)
            fast = run_simulation(SystemConfig.paper_parallel(8, size), app)
            return slow.execution_time / fast.execution_time

        assert self_relative(64 * KB) > self_relative(1 * KB)
