"""Tests for the instrumented Barnes-Hut application."""

import math

import pytest

from repro.core.config import KB, SystemConfig
from repro.simulation import run_simulation
from repro.trace.events import (Barrier, Compute, LockAcquire, LockRelease,
                                Read, Write)
from repro.trace.packed import PackedChunk, decode_events
from repro.workloads.barnes_hut import (BarnesHut, Body, Cell,
                                        _BarnesHutRun, _bounding_cube,
                                        _cost_chunks, _quiet_build,
                                        _tree_ordered_bodies)


def small_config(procs=2, clusters=2):
    return SystemConfig(clusters=clusters, processors_per_cluster=procs,
                        scc_size=8 * KB)


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BarnesHut(n_bodies=1)
        with pytest.raises(ValueError):
            BarnesHut(steps=0)
        with pytest.raises(ValueError):
            BarnesHut(theta=5.0)

    def test_processes_covers_every_processor(self):
        app = BarnesHut(n_bodies=32, steps=1)
        config = small_config()
        processes = app.processes(config)
        assert sorted(processes) == list(range(config.total_processors))


class TestOctree:
    def test_quiet_build_holds_every_body_once(self):
        app = BarnesHut(n_bodies=64, steps=1)
        run = _BarnesHutRun(app, small_config())
        root = _quiet_build(run.bodies)
        ordered = _tree_ordered_bodies(root)
        assert sorted(b.index for b in ordered) == list(range(64))

    def test_bounding_cube_covers_all_bodies(self):
        app = BarnesHut(n_bodies=64, steps=1)
        run = _BarnesHutRun(app, small_config())
        centre, half = _bounding_cube(run.bodies)
        for body in run.bodies:
            for axis in range(3):
                assert abs(body.pos[axis] - centre[axis]) <= half

    def test_octants_partition_space(self):
        cell = Cell(0, [0.0, 0.0, 0.0], 1.0, 0)
        seen = {cell.octant_of([x, y, z])
                for x in (-0.5, 0.5) for y in (-0.5, 0.5)
                for z in (-0.5, 0.5)}
        assert seen == set(range(8))

    def test_child_centres_are_inside_parent(self):
        cell = Cell(0, [0.0, 0.0, 0.0], 1.0, 0)
        for octant in range(8):
            centre = cell.child_centre(octant)
            assert all(abs(c) == 0.5 for c in centre)


class TestCostPartition:
    def test_chunks_cover_in_order(self):
        bodies = [Body(i, [0, 0, 0], [0, 0, 0], 1.0) for i in range(10)]
        chunks = _cost_chunks(bodies, 3)
        flattened = [b.index for chunk in chunks for b in chunk]
        assert flattened == list(range(10))

    def test_costs_balance_chunks(self):
        bodies = [Body(i, [0, 0, 0], [0, 0, 0], 1.0) for i in range(100)]
        for body in bodies:
            body.cost = 1 + (body.index % 7)
        chunks = _cost_chunks(bodies, 4)
        costs = [sum(b.cost for b in chunk) for chunk in chunks]
        assert max(costs) < 1.5 * min(costs)


class TestPhysics:
    def test_momentum_is_roughly_conserved(self):
        """Equal-mass gravity is symmetric, so total momentum drift per
        step stays near zero (softened forces are exactly pairwise)."""
        app = BarnesHut(n_bodies=48, steps=2, theta=0.1)  # near-exact
        config = SystemConfig(clusters=1, processors_per_cluster=1,
                              scc_size=64 * KB)
        run = _BarnesHutRun(app, config)
        before = [sum(b.vel[axis] * b.mass for b in run.bodies)
                  for axis in range(3)]
        system_result = run_simulation(config, app)
        assert system_result.execution_time > 0
        # Re-derive from a fresh run object driven through simulation.
        run2 = _BarnesHutRun(app, config)
        from repro.core.system import MultiprocessorSystem
        from repro.trace.interleave import TimingInterleaver
        interleaver = TimingInterleaver(MultiprocessorSystem(config))
        interleaver.add_process(0, run2.process(0))
        interleaver.run()
        after = [sum(b.vel[axis] * b.mass for b in run2.bodies)
                 for axis in range(3)]
        for axis in range(3):
            assert math.isfinite(after[axis])
            assert abs(after[axis] - before[axis]) < 0.05

    def test_positions_change_between_steps(self):
        app = BarnesHut(n_bodies=32, steps=1)
        config = SystemConfig(clusters=1, processors_per_cluster=1)
        run = _BarnesHutRun(app, config)
        initial = [list(b.pos) for b in run.bodies]
        from repro.core.system import MultiprocessorSystem
        from repro.trace.interleave import TimingInterleaver
        interleaver = TimingInterleaver(MultiprocessorSystem(config))
        interleaver.add_process(0, run.process(0))
        interleaver.run()
        moved = sum(1 for b, init in zip(run.bodies, initial)
                    if b.pos != init)
        assert moved > 16


def iter_events(stream):
    """Flatten a trace stream, expanding packed chunks into events."""
    for item in stream:
        if isinstance(item, PackedChunk):
            yield from decode_events(item.data)
        else:
            yield item


class TestTraceProperties:
    def test_single_processor_stream_is_well_formed(self):
        app = BarnesHut(n_bodies=32, steps=1)
        config = SystemConfig(clusters=1, processors_per_cluster=1)
        run = _BarnesHutRun(app, config)
        held = set()
        events = 0
        for event in iter_events(run.process(0)):
            events += 1
            if isinstance(event, LockAcquire):
                assert event.lock_id not in held
                held.add(event.lock_id)
            elif isinstance(event, LockRelease):
                assert event.lock_id in held
                held.remove(event.lock_id)
            elif isinstance(event, (Read, Write)):
                assert event.addr >= 0
            elif isinstance(event, Compute):
                assert event.cycles >= 0
        assert not held
        assert events > 500

    def test_addresses_stay_inside_allocations(self):
        app = BarnesHut(n_bodies=32, steps=1)
        config = SystemConfig(clusters=1, processors_per_cluster=1)
        run = _BarnesHutRun(app, config)
        lo = min(run.body_region.base, run.cell_region.base)
        hi = max(run.body_region.end, run.cell_region.end)
        for event in iter_events(run.process(0)):
            if isinstance(event, (Read, Write)):
                assert lo <= event.addr < hi


class TestDeterminism:
    def test_same_seed_same_execution_time(self):
        app = BarnesHut(n_bodies=48, steps=1, seed=11)
        config = small_config()
        first = run_simulation(config, app)
        second = run_simulation(config, app)
        assert first.execution_time == second.execution_time
        assert first.stats.total_scc.reads == second.stats.total_scc.reads

    def test_different_seeds_differ(self):
        config = small_config()
        first = run_simulation(config, BarnesHut(n_bodies=48, steps=1,
                                                 seed=1))
        second = run_simulation(config, BarnesHut(n_bodies=48, steps=1,
                                                  seed=2))
        assert first.execution_time != second.execution_time


class TestArchitecturalBehaviour:
    def test_sharing_reduces_per_cluster_misses(self):
        """The prefetching effect: two procs sharing an SCC miss less,
        per reference, than one proc with the same SCC."""
        app = BarnesHut(n_bodies=96, steps=2)
        solo = run_simulation(
            SystemConfig.paper_parallel(1, 4 * KB), app)
        shared = run_simulation(
            SystemConfig.paper_parallel(2, 4 * KB), app)
        assert shared.stats.read_miss_rate < solo.stats.read_miss_rate

    def test_invalidations_flat_with_cluster_width(self):
        app = BarnesHut(n_bodies=96, steps=2)
        narrow = run_simulation(
            SystemConfig.paper_parallel(1, 8 * KB), app)
        wide = run_simulation(
            SystemConfig.paper_parallel(4, 8 * KB), app)
        assert (wide.stats.total_invalidations
                < narrow.stats.total_invalidations * 1.5 + 50)
