"""Tests for the round-robin multiprogramming scheduler."""

import pytest

from repro.core.config import KB, SystemConfig
from repro.simulation import run_simulation
from repro.workloads.multiprog import MultiprogrammingWorkload, _SchedulerRun
from repro.workloads.spec import SPEC92_PROFILES, SpecApp


def small_workload(**overrides):
    defaults = dict(instructions_per_app=4000, quantum_instructions=1000,
                    scale=8)
    defaults.update(overrides)
    return MultiprogrammingWorkload(**defaults)


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MultiprogrammingWorkload(instructions_per_app=0)
        with pytest.raises(ValueError):
            MultiprogrammingWorkload(quantum_instructions=0)

    def test_default_mix_is_the_eight_spec_apps(self):
        apps = MultiprogrammingWorkload().build_apps()
        assert len(apps) == 8

    def test_custom_apps_are_used(self):
        custom = [SpecApp(0, SPEC92_PROFILES[0], scale=8)]
        workload = small_workload(apps=custom)
        assert workload.build_apps() == custom


class TestScheduling:
    def test_every_app_executes_its_full_budget(self):
        workload = small_workload()
        config = SystemConfig.paper_multiprogramming(2, 4 * KB)
        run = _SchedulerRun(workload, config)
        from repro.core.system import MultiprocessorSystem
        from repro.trace.interleave import TimingInterleaver
        interleaver = TimingInterleaver(MultiprocessorSystem(config))
        for pid in range(config.total_processors):
            interleaver.add_process(pid, run.process(pid))
        interleaver.run()
        assert run.unfinished == 0
        assert all(left == 0 for left in run.remaining.values())
        for app in run.apps:
            assert app.instructions_executed == 4000

    def test_more_processors_than_apps_still_terminates(self):
        workload = small_workload(instructions_per_app=2000)
        config = SystemConfig.paper_multiprogramming(8, 4 * KB)
        result = run_simulation(config, workload)
        assert result.execution_time > 0

    def test_throughput_improves_with_processors(self):
        workload = small_workload(instructions_per_app=8000,
                                  quantum_instructions=2000)
        slow = run_simulation(
            SystemConfig.paper_multiprogramming(1, 16 * KB), workload)
        fast = run_simulation(
            SystemConfig.paper_multiprogramming(4, 16 * KB), workload)
        assert fast.execution_time < slow.execution_time

    def test_interference_raises_miss_rate(self):
        """Figure 6's mechanism: co-scheduled processes interfere in the
        shared SCC."""
        workload = small_workload(instructions_per_app=20_000,
                                  quantum_instructions=5_000)
        solo = run_simulation(
            SystemConfig.paper_multiprogramming(1, 4 * KB), workload)
        crowded = run_simulation(
            SystemConfig.paper_multiprogramming(8, 4 * KB), workload)
        assert (crowded.stats.total_scc.miss_rate
                > solo.stats.total_scc.miss_rate)

    def test_deterministic(self):
        workload = small_workload()
        config = SystemConfig.paper_multiprogramming(2, 8 * KB)
        assert (run_simulation(config, workload).execution_time
                == run_simulation(config, workload).execution_time)
