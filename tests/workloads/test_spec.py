"""Tests for the SPEC92-like synthetic reference generators."""

import pytest

from repro.trace.events import Ifetch, Read, Write
from repro.workloads.spec import (SPEC92_PROFILES, SpecApp, SpecProfile,
                                  spec92_workload)


def first_profile():
    return SPEC92_PROFILES[0]


class TestProfiles:
    def test_eight_applications(self):
        assert len(SPEC92_PROFILES) == 8
        names = {profile.name for profile in SPEC92_PROFILES}
        assert names == {"sc", "espresso", "eqntott", "xlisp", "compress",
                         "gcc", "spice", "wave5"}

    def test_fractions_are_sane(self):
        for profile in SPEC92_PROFILES:
            assert 0 < profile.refs_per_instruction < 1
            assert 0 <= profile.write_fraction <= 1
            assert (profile.stack_fraction + profile.scan_fraction) < 1
            assert profile.hot_bytes < profile.data_bytes


class TestSpecApp:
    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            SpecApp(0, first_profile(), scale=0)

    def test_burst_executes_requested_instructions(self):
        app = SpecApp(0, first_profile(), scale=8)
        list(app.burst(1000))
        assert app.instructions_executed == 1000
        list(app.burst(500))
        assert app.instructions_executed == 1500

    def test_burst_mixes_fetches_and_data(self):
        app = SpecApp(0, first_profile(), scale=8)
        events = list(app.burst(2000))
        kinds = {type(e) for e in events}
        assert Ifetch in kinds
        assert Read in kinds
        assert Write in kinds

    def test_data_reference_density_matches_profile(self):
        profile = first_profile()
        app = SpecApp(0, profile, scale=8)
        events = list(app.burst(20_000))
        refs = sum(1 for e in events if isinstance(e, (Read, Write)))
        expected = profile.refs_per_instruction * 20_000
        assert abs(refs - expected) < expected * 0.15

    def test_streams_are_deterministic(self):
        first = list(SpecApp(3, first_profile(), seed=9).burst(3000))
        second = list(SpecApp(3, first_profile(), seed=9).burst(3000))
        assert first == second

    def test_stream_is_resumable(self):
        whole = list(SpecApp(1, first_profile(), seed=5).burst(4000))
        split_app = SpecApp(1, first_profile(), seed=5)
        split = list(split_app.burst(1000)) + list(split_app.burst(3000))
        # Same instruction count and same data references; fetch events
        # may split differently at the quantum boundary.
        def data(events):
            return [e for e in events if isinstance(e, (Read, Write))]
        assert data(whole) == data(split)

    def test_burst_packed_matches_burst(self):
        """The packed burst is draw-for-draw identical to the event-object
        burst: same events, same RNG consumption, same cursors."""
        from repro.trace.packed import decode_events

        object_app = SpecApp(2, first_profile(), seed=11)
        packed_app = SpecApp(2, first_profile(), seed=11)
        for quantum in (1500, 700, 1800):
            expected = list(object_app.burst(quantum))
            buf = []
            packed_app.burst_packed(quantum, buf)
            assert list(decode_events(buf)) == expected
            assert (packed_app.instructions_executed
                    == object_app.instructions_executed)
        # Both generators must land in the same state: further bursts
        # from either path stay identical.
        tail_expected = list(object_app.burst(1000))
        tail_buf = []
        packed_app.burst_packed(1000, tail_buf)
        assert list(decode_events(tail_buf)) == tail_expected

    def test_address_spaces_are_disjoint(self):
        apps = spec92_workload(scale=8)
        spans = []
        for app in apps:
            addrs = [e.addr for e in app.burst(2000)
                     if isinstance(e, (Read, Write, Ifetch))]
            spans.append((min(addrs), max(addrs)))
        spans.sort()
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi < lo

    def test_scan_walks_sequentially(self):
        profile = SpecProfile("scanner", code_bytes=4096, data_bytes=65536,
                              hot_bytes=1024, scan_fraction=0.9,
                              write_fraction=0.0,
                              refs_per_instruction=0.5,
                              stack_fraction=0.0)
        app = SpecApp(0, profile, scale=1)
        addrs = [e.addr for e in app.burst(2000)
                 if isinstance(e, Read) and app.scan_base <= e.addr
                 < app.scan_base + app.scan_bytes]
        diffs = [b - a for a, b in zip(addrs, addrs[1:])]
        # Overwhelmingly forward strides of 16 bytes.
        forward = sum(1 for d in diffs if d == 16)
        assert forward > len(diffs) * 0.75

    def test_scale_shrinks_working_sets(self):
        big = SpecApp(0, first_profile(), scale=1)
        small = SpecApp(0, first_profile(), scale=8)
        assert small.hot_bytes <= big.hot_bytes // 8 + 128
        assert small.code_bytes <= big.code_bytes // 8 + 256
