"""Tests for sparse patterns and symbolic Cholesky analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.matrices import (SparsePattern, bcsstk_like,
                                      elimination_tree, supernodes,
                                      symbolic_factor)


def random_pattern(n, density, seed):
    """Helper: random symmetric lower pattern with full diagonal."""
    rng = np.random.default_rng(seed)
    columns = []
    for j in range(n):
        rows = {j}
        for i in range(j + 1, n):
            if rng.uniform() < density:
                rows.add(i)
        columns.append(tuple(sorted(rows)))
    return SparsePattern(n=n, columns=tuple(columns))


class TestSparsePattern:
    def test_validation_catches_missing_diagonal(self):
        with pytest.raises(ValueError):
            SparsePattern(n=2, columns=((0,), (0,)))

    def test_validation_catches_unsorted(self):
        with pytest.raises(ValueError):
            SparsePattern(n=2, columns=((0, 1, 1), (1,)))

    def test_validation_catches_out_of_range(self):
        with pytest.raises(ValueError):
            SparsePattern(n=2, columns=((0, 5), (1,)))

    def test_nnz(self):
        pattern = SparsePattern(n=3, columns=((0, 1), (1, 2), (2,)))
        assert pattern.nnz == 5


class TestBcsstkLike:
    def test_deterministic(self):
        assert bcsstk_like(n=64, seed=9).columns == \
            bcsstk_like(n=64, seed=9).columns

    def test_seed_changes_pattern(self):
        assert bcsstk_like(n=64, seed=1).columns != \
            bcsstk_like(n=64, seed=2).columns

    def test_structure_is_valid_and_sparse(self):
        pattern = bcsstk_like(n=200)
        assert pattern.n == 200
        assert pattern.nnz < 200 * 40   # genuinely sparse

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            bcsstk_like(n=1)
        with pytest.raises(ValueError):
            bcsstk_like(leaf=1)
        with pytest.raises(ValueError):
            bcsstk_like(band=0)
        with pytest.raises(ValueError):
            bcsstk_like(separator_fraction=0.6)

    def test_dissection_gives_a_bushy_tree(self):
        """The point of the generator: multiple independent subtrees so
        the factorization has early parallelism."""
        pattern = bcsstk_like(n=300)
        factor, parent = symbolic_factor(pattern)
        children = [0] * pattern.n
        for j, p in enumerate(parent):
            if p >= 0:
                children[p] += 1
        # At least a handful of branch points.
        assert sum(1 for c in children if c >= 2) >= 4


class TestEliminationTree:
    def test_matches_symbolic_factor_parent(self):
        pattern = bcsstk_like(n=120, seed=4)
        factor, parent_from_factor = symbolic_factor(pattern)
        assert elimination_tree(pattern) == parent_from_factor

    def test_parents_point_later(self):
        pattern = bcsstk_like(n=80)
        parent = elimination_tree(pattern)
        for j, p in enumerate(parent):
            assert p == -1 or p > j

    @given(st.integers(2, 30), st.floats(0.05, 0.5), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_symbolic_factor_on_random_patterns(
            self, n, density, seed):
        pattern = random_pattern(n, density, seed)
        _, parent = symbolic_factor(pattern)
        assert elimination_tree(pattern) == parent


class TestSymbolicFactor:
    def test_factor_contains_original_pattern(self):
        pattern = bcsstk_like(n=100)
        factor, _ = symbolic_factor(pattern)
        for j in range(pattern.n):
            assert set(pattern.columns[j]) <= set(factor.columns[j])

    def test_factor_matches_dense_cholesky_structure(self):
        """The symbolic structure must cover the numeric fill of an SPD
        matrix with that pattern (the fill-path theorem, verified
        numerically)."""
        pattern = random_pattern(24, 0.2, seed=7)
        factor, _ = symbolic_factor(pattern)
        rng = np.random.default_rng(7)
        dense = np.zeros((24, 24))
        for j in range(24):
            for i in pattern.columns[j]:
                if i != j:
                    dense[i, j] = dense[j, i] = rng.uniform(0.1, 1.0)
        np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
        chol = np.linalg.cholesky(dense)
        for j in range(24):
            numeric_rows = set(np.nonzero(np.abs(chol[:, j]) > 1e-12)[0])
            assert numeric_rows <= set(factor.columns[j])

    @given(st.integers(2, 25), st.floats(0.05, 0.5), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_struct_nesting_property(self, n, density, seed):
        """struct(j) minus {j} is a subset of struct(parent(j)) -- the
        fundamental supernodal property."""
        pattern = random_pattern(n, density, seed)
        factor, parent = symbolic_factor(pattern)
        for j in range(n):
            p = parent[j]
            if p >= 0:
                assert (set(factor.columns[j]) - {j}
                        <= set(factor.columns[p]))


class TestSupernodes:
    def test_cover_all_columns_exactly_once(self):
        pattern = bcsstk_like(n=200)
        factor, parent = symbolic_factor(pattern)
        nodes = supernodes(factor, parent)
        covered = []
        for node in nodes:
            covered.extend(range(node.first, node.last + 1))
        assert covered == list(range(pattern.n))

    def test_width_cap_respected(self):
        pattern = bcsstk_like(n=200)
        factor, parent = symbolic_factor(pattern)
        for node in supernodes(factor, parent, max_width=3):
            assert node.width <= 3

    def test_rows_start_with_own_columns(self):
        pattern = bcsstk_like(n=150)
        factor, parent = symbolic_factor(pattern)
        for node in supernodes(factor, parent):
            assert list(node.rows[:node.width]) == \
                list(range(node.first, node.last + 1))

    def test_rows_cover_member_structures(self):
        pattern = bcsstk_like(n=150)
        factor, parent = symbolic_factor(pattern)
        for node in supernodes(factor, parent, relax=4):
            union = set(node.rows)
            for col in range(node.first, node.last + 1):
                assert set(factor.columns[col]) <= union

    def test_relax_zero_gives_fundamental_supernodes(self):
        pattern = bcsstk_like(n=150)
        factor, parent = symbolic_factor(pattern)
        for node in supernodes(factor, parent, relax=0):
            for col in range(node.first + 1, node.last + 1):
                assert parent[col - 1] == col
                assert set(factor.columns[col]) == \
                    set(factor.columns[col - 1]) - {col - 1}
