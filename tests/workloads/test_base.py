"""Tests for the workload framework helpers."""

from repro.trace.events import Compute, Read, Write
from repro.workloads.base import (read_record, read_span, write_record,
                                  write_span)


class TestSpans:
    def test_read_span_strides(self):
        events = list(read_span(0x100, 32, stride=8))
        assert events == [Read(0x100), Read(0x108), Read(0x110),
                          Read(0x118)]

    def test_write_span(self):
        events = list(write_span(0x100, 16, stride=16))
        assert events == [Write(0x100)]

    def test_partial_tail_still_touched(self):
        # 20 bytes at stride 8 -> offsets 0, 8, 16.
        assert len(list(read_span(0, 20, stride=8))) == 3

    def test_record_helpers_add_compute(self):
        events = list(read_record(0, 16, compute=10))
        assert events[-1] == Compute(10)
        events = list(write_record(0, 16, compute=0))
        assert all(isinstance(e, Write) for e in events)
