"""Tests for the instrumented parallel sparse Cholesky."""

import numpy as np
import pytest

from repro.core.config import KB, SystemConfig
from repro.core.system import MultiprocessorSystem
from repro.simulation import run_simulation
from repro.trace.events import Read, Write
from repro.trace.interleave import TimingInterleaver
from repro.workloads.cholesky import Cholesky, _CholeskyRun, _assemble_dense
from repro.workloads.matrices import bcsstk_like


def factor_to_dense(run):
    """Reassemble the factor L from a finished run's supernode blocks."""
    n = run.factor_pattern.n
    L = np.zeros((n, n))
    for node in run.supers:
        block = run.blocks[node.index]
        for local_col in range(node.width):
            col = node.first + local_col
            for row, k in run.row_pos[node.index].items():
                if row >= col:
                    L[row, col] = block[k, local_col]
    return L


def drive(app, config):
    """Run the factorization under the interleaver; return the run."""
    run = _CholeskyRun(app, config)
    interleaver = TimingInterleaver(MultiprocessorSystem(config))
    for pid in range(config.total_processors):
        interleaver.add_process(pid, run.process(pid))
    interleaver.run()
    return run


class TestNumericCorrectness:
    @pytest.mark.parametrize("procs,clusters", [(1, 1), (2, 2), (4, 2)])
    def test_factor_matches_dense_cholesky(self, procs, clusters):
        """The parallel task-queue factorization computes the same L as
        numpy's dense Cholesky, under any interleaving."""
        app = Cholesky(n=72, seed=5)
        config = SystemConfig(clusters=clusters,
                              processors_per_cluster=procs,
                              scc_size=8 * KB)
        run = drive(app, config)
        reference = np.linalg.cholesky(
            _assemble_dense(app.pattern, app.seed))
        assert np.abs(factor_to_dense(run) - reference).max() < 1e-9

    def test_reference_factor_helper(self):
        app = Cholesky(n=40, seed=2)
        reference = app.reference_factor()
        dense = _assemble_dense(app.pattern, app.seed)
        assert np.allclose(reference @ reference.T, dense)

    def test_every_supernode_completes(self):
        app = Cholesky(n=72)
        run = drive(app, SystemConfig(clusters=2,
                                      processors_per_cluster=2,
                                      scc_size=8 * KB))
        assert run.completed == len(run.supers)
        assert all(run.factored)
        assert all(count == 0 for count in run.dep_count)


def iterate_servicing_queues(generator):
    """Drive a dynamic (task-queue-using) generator standalone.

    Iterating such a generator raw would leave every TaskDequeue
    unanswered and spin forever; this shim services the queue events the
    way the interleaver would, for single-process trace inspection.
    """
    from collections import deque

    from repro.trace.events import TaskDequeue, TaskEnqueue

    queues = {}
    response = None
    pending = False
    while True:
        try:
            event = generator.send(response) if pending else next(generator)
        except StopIteration:
            return
        response = None
        pending = False
        from repro.trace.packed import PackedChunk, decode_events
        sub_events = (decode_events(event.data)
                      if isinstance(event, PackedChunk) else (event,))
        for sub in sub_events:
            if isinstance(sub, TaskEnqueue):
                queues.setdefault(sub.queue_id, deque()).append(sub.item)
            elif isinstance(sub, TaskDequeue):
                queue = queues.setdefault(sub.queue_id, deque())
                if isinstance(event, PackedChunk):
                    # chunk semantics: pop-and-discard
                    if queue:
                        queue.popleft()
                else:
                    response = queue.popleft() if queue else None
                    pending = True
            yield sub


class TestTraceProperties:
    def test_addresses_stay_inside_supernode_regions(self):
        app = Cholesky(n=60)
        config = SystemConfig(clusters=1, processors_per_cluster=1)
        run = _CholeskyRun(app, config)
        lo = min(region.base for region in run.regions)
        hi = max(region.end for region in run.regions)
        for event in iterate_servicing_queues(run.process(0)):
            if isinstance(event, (Read, Write)):
                assert lo <= event.addr < hi

    def test_dependency_counts_match_update_lists(self):
        app = Cholesky(n=120)
        run = _CholeskyRun(app, SystemConfig(clusters=1,
                                             processors_per_cluster=1))
        incoming = [0] * len(run.supers)
        for source, targets in enumerate(run.updates):
            for target in targets:
                assert target > source   # updates flow forward only
                incoming[target] += 1
        assert incoming == run.dep_count


class TestDeterminism:
    def test_same_seed_reproduces(self):
        app = Cholesky(n=96, seed=4)
        config = SystemConfig(clusters=2, processors_per_cluster=2,
                              scc_size=4 * KB)
        assert (run_simulation(config, app).execution_time
                == run_simulation(config, app).execution_time)


class TestArchitecturalBehaviour:
    def test_speedup_is_limited(self):
        """The paper's Cholesky finding: poor speedup regardless of
        cache size (limited concurrency, load imbalance, sync)."""
        app = Cholesky(n=192)
        slow = run_simulation(SystemConfig.paper_parallel(1, 8 * KB), app)
        fast = run_simulation(SystemConfig.paper_parallel(8, 8 * KB), app)
        speedup = slow.execution_time / fast.execution_time
        assert 1.0 < speedup < 6.0
