"""Property-based tests over the workload generators' internals."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import KB, SystemConfig
from repro.workloads.barnes_hut import (Body, Cell, _bounding_cube,
                                        _cost_chunks, _quiet_build,
                                        _tree_ordered_bodies)
from repro.workloads.spec import SPEC92_PROFILES, SpecApp

POSITIONS = st.lists(
    st.tuples(st.floats(-10, 10, allow_nan=False),
              st.floats(-10, 10, allow_nan=False),
              st.floats(-10, 10, allow_nan=False)),
    min_size=2, max_size=80, unique=True)


def bodies_from(positions):
    return [Body(index, list(pos), [0.0, 0.0, 0.0], 1.0)
            for index, pos in enumerate(positions)]


class TestOctreeProperties:
    @given(POSITIONS)
    @settings(max_examples=80, deadline=None)
    def test_build_preserves_every_body_exactly_once(self, positions):
        bodies = bodies_from(positions)
        root = _quiet_build(bodies)
        ordered = _tree_ordered_bodies(root)
        assert sorted(b.index for b in ordered) == \
            list(range(len(bodies)))

    @given(POSITIONS)
    @settings(max_examples=60, deadline=None)
    def test_bodies_lie_inside_their_cells(self, positions):
        """Walking the tree, every body must sit inside the cube of the
        cell whose child slot holds it."""
        bodies = bodies_from(positions)
        root = _quiet_build(bodies)
        stack = [root]
        while stack:
            cell = stack.pop()
            for octant, child in enumerate(cell.children):
                if child is None:
                    continue
                if isinstance(child, Cell):
                    stack.append(child)
                    continue
                for axis in range(3):
                    assert (abs(child.pos[axis] - cell.centre[axis])
                            <= cell.half + 1e-9)

    @given(POSITIONS)
    @settings(max_examples=60, deadline=None)
    def test_total_mass_is_conserved_in_the_summary(self, positions):
        bodies = bodies_from(positions)
        root = _quiet_build(bodies)
        assert root.mass == pytest.approx(len(bodies), rel=1e-9)

    @given(POSITIONS, st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_cost_chunks_partition_and_preserve_order(self, positions,
                                                      n_chunks):
        bodies = bodies_from(positions)
        for body in bodies:
            body.cost = 1 + body.index % 5
        chunks = _cost_chunks(bodies, n_chunks)
        assert len(chunks) == n_chunks
        flattened = [b.index for chunk in chunks for b in chunk]
        assert flattened == [b.index for b in bodies]


class TestSpecGeneratorProperties:
    @given(st.integers(0, 7), st.integers(1, 4).map(lambda k: 2 ** k),
           st.integers(100, 5000))
    @settings(max_examples=40, deadline=None)
    def test_instruction_budget_is_exact(self, app_id, scale, budget):
        app = SpecApp(app_id, SPEC92_PROFILES[app_id], scale=scale)
        list(app.burst(budget))
        assert app.instructions_executed == budget

    @given(st.integers(0, 7), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_addresses_stay_in_the_process_address_space(self, app_id,
                                                         seed):
        from repro.trace.events import Ifetch, Read, Write
        from repro.workloads.spec import _ADDRESS_SPACE
        app = SpecApp(app_id, SPEC92_PROFILES[app_id], scale=8, seed=seed)
        base = app_id * _ADDRESS_SPACE
        for event in app.burst(2000):
            if isinstance(event, (Read, Write, Ifetch)):
                assert base <= event.addr < base + _ADDRESS_SPACE
