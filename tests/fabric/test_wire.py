"""Wire vocabulary: labels, sweep payloads, spec serialization."""

import pytest

from repro.experiments.spec import WIRE_VERSION, SweepSpec
from repro.fabric.wire import (FabricError, parse_point_label,
                               point_label, sweep_from_wire,
                               sweep_to_wire)

from .conftest import make_stats


class TestPointLabels:
    def test_round_trip(self):
        for point in ((1, 4096), (8, 512 * 1024)):
            assert parse_point_label(point_label(point)) == point

    @pytest.mark.parametrize("label", ["", "1", "a/b", "1/2/3", "1/"])
    def test_malformed_labels_raise(self, label):
        with pytest.raises(FabricError):
            parse_point_label(label)


class TestSweepWire:
    def test_round_trip_preserves_stats(self):
        sweep = {(1, 4096): make_stats(1), (2, 8192): make_stats(2)}
        back = sweep_from_wire(sweep_to_wire(sweep))
        assert set(back) == set(sweep)
        for point, stats in sweep.items():
            assert back[point].as_dict() == stats.as_dict()

    def test_empty_and_none(self):
        assert sweep_from_wire({}) == {}
        assert sweep_from_wire(None) == {}


class TestSpecWire:
    def test_round_trip_preserves_identity_and_execution(self, tiny_spec):
        back = SweepSpec.from_wire(tiny_spec.to_wire())
        assert back.signature() == tiny_spec.signature()
        assert back.describe() == tiny_spec.describe()
        assert back.configs().keys() == tiny_spec.configs().keys()
        # Execution knobs survive too: the worker honours them.
        assert back.fused == tiny_spec.fused
        assert back.max_attempts == tiny_spec.max_attempts
        assert back.retry_backoff == tiny_spec.retry_backoff

    def test_point_keys_survive_the_wire(self, tiny_spec):
        """The key-compatibility guarantee: a spec rebuilt from its
        wire payload addresses the very same store entries."""
        back = SweepSpec.from_wire(tiny_spec.to_wire())
        for point, config in tiny_spec.configs().items():
            assert (back.point_key(back.configs()[point])
                    == tiny_spec.point_key(config))

    def test_wire_payload_is_json_safe(self, tiny_spec):
        import json
        payload = tiny_spec.to_wire()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["version"] == WIRE_VERSION

    def test_version_mismatch_rejected(self, tiny_spec):
        payload = tiny_spec.to_wire()
        payload["version"] = WIRE_VERSION + 1
        with pytest.raises(ValueError, match="wire version"):
            SweepSpec.from_wire(payload)

    @pytest.mark.parametrize("mangle", [
        lambda p: p.pop("benchmark"),
        lambda p: p.pop("profile"),
        lambda p: p.__setitem__("profile", "not-a-dict"),
    ])
    def test_malformed_payloads_rejected(self, tiny_spec, mangle):
        payload = tiny_spec.to_wire()
        mangle(payload)
        with pytest.raises((ValueError, TypeError)):
            SweepSpec.from_wire(payload)
