"""The asyncio HTTP service end to end: byte-identical results over
HTTP, warm submissions with zero simulations, worker death mid-grid."""

import json
import threading
import time
import urllib.request

import pytest

from repro.experiments.session import grid_sweep
from repro.fabric import (ArtifactStore, Broker, FabricError,
                          SweepClient, Worker, start_in_thread)

from .conftest import counting_simulator


@pytest.fixture
def fabric_http():
    """A served broker with one real worker thread; yields
    (broker, client, url)."""
    broker = Broker(ArtifactStore.in_memory(), lease_ttl=1.0)
    stop = threading.Event()
    worker = Worker(broker, worker_id="svc-worker")
    thread = threading.Thread(target=worker.run, kwargs={"stop": stop},
                              daemon=True)
    thread.start()
    url, stop_service = start_in_thread(broker)
    try:
        yield broker, SweepClient.connect(url), url
    finally:
        stop.set()
        stop_service()
        thread.join(timeout=5.0)


def _get_json(url: str):
    with urllib.request.urlopen(url, timeout=30.0) as response:
        return json.loads(response.read())


class TestHttpEndToEnd:
    def test_results_byte_identical_to_local(self, fabric_http,
                                             tiny_spec):
        _broker, client, _url = fabric_http
        local = grid_sweep(tiny_spec, cache=None)
        handle = client.submit(tiny_spec)
        remote = client.result(handle, timeout=120.0)
        assert set(remote) == set(local)
        for point in local:
            assert remote[point].as_dict() == local[point].as_dict()

    def test_warm_resubmission_zero_simulations(self, fabric_http,
                                                tiny_spec, monkeypatch):
        _broker, client, _url = fabric_http
        client.result(client.submit(tiny_spec), timeout=120.0)
        calls = counting_simulator(monkeypatch)
        warm = client.submit(tiny_spec)
        remote = client.result(warm, timeout=10.0)
        assert warm.store_hits == warm.total == len(remote) == 4
        assert warm.pending_units == 0
        assert calls == []

    def test_progress_identical_shape_to_local_transport(self,
                                                         fabric_http,
                                                         tiny_spec):
        _broker, client, _url = fabric_http
        handle = client.submit(tiny_spec)
        events = list(client.iter_progress(handle))
        assert events[0]["event"] == "submitted"
        assert events[-1]["event"] == "done"
        assert events[-1]["ok"] is True

    def test_dead_worker_loses_no_points(self, fabric_http, tiny_spec):
        """A worker that leases a unit and dies mid-grid: the lease
        expires and a survivor finishes every point."""
        broker, client, _url = fabric_http
        handle = client.submit(tiny_spec)
        # A doomed "worker" grabs a unit straight off the broker and
        # never heartbeats again -- exactly what a killed process does.
        doomed = broker.lease("doomed-worker")
        assert doomed is not None
        remote = client.result(handle, timeout=120.0)
        assert len(remote) == handle.total == 4      # nothing lost
        expired = [e for e in broker.events_since(handle.job, 0,
                                                  timeout=0)[0]
                   if e.get("status") == "expired"]
        assert expired and expired[0]["worker"] == "doomed-worker"


class TestHttpSurface:
    def test_healthz_and_metrics(self, fabric_http, tiny_spec):
        _broker, client, url = fabric_http
        client.result(client.submit(tiny_spec), timeout=120.0)
        health = _get_json(url + "/healthz")
        assert health["ok"] is True
        assert health["jobs"]["total"] == 1
        metrics = _get_json(url + "/metrics")
        assert metrics["counters"]["fabric.jobs.completed"] == 1
        assert "svc-worker" in metrics["workers"]

    def test_ndjson_stream_replays_the_event_log(self, fabric_http,
                                                 tiny_spec):
        _broker, client, url = fabric_http
        handle = client.submit(tiny_spec)
        client.result(handle, timeout=120.0)
        with urllib.request.urlopen(f"{url}/jobs/{handle.job}/stream",
                                    timeout=30.0) as response:
            assert response.headers["Content-Type"] == \
                "application/x-ndjson"
            events = [json.loads(line)
                      for line in response.read().splitlines()]
        assert events[0]["event"] == "submitted"
        assert events[-1]["event"] == "done"

    def test_one_shot_sweep_endpoint(self, fabric_http, tiny_spec):
        _broker, _client, url = fabric_http
        body = json.dumps({"spec": tiny_spec.to_wire()}).encode()
        request = urllib.request.Request(
            url + "/sweep", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=120.0) as response:
            lines = [json.loads(line)
                     for line in response.read().splitlines()]
        assert lines[0]["total"] == 4                # the job descriptor
        assert lines[-1]["event"] == "done"

    def test_error_paths(self, fabric_http):
        _broker, client, url = fabric_http
        with pytest.raises(FabricError, match="unknown job"):
            client.status("nope")
        with pytest.raises(FabricError, match="spec"):
            client.transport._request("POST", "/jobs",
                                      {"nope": 1})
        with pytest.raises(FabricError, match="no route"):
            client.transport._request("GET", "/bogus")

    def test_unreachable_service(self):
        client = SweepClient.connect("http://127.0.0.1:9")  # discard port
        with pytest.raises(FabricError, match="unreachable"):
            client.status("any")
