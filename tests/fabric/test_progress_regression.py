"""Regressions for progress-stream termination.

The stall class under test: ``iter_progress`` historically trusted the
event log to eventually deliver a ``done`` event.  A consumer that
started polling after the job had already finished -- e.g. because its
final point was *quarantined* before the first poll -- or a transport
that lost the terminal event would then long-poll forever on drained
pages.  The fix consults the job's state whenever a page comes back
empty, and the broker emits progress events for quarantined points so
they are visible in the stream at all.
"""

import dataclasses

import pytest

from repro.experiments.session import QuarantinedPointError
from repro.fabric import LocalFabric
from repro.fabric.client import HttpTransport, SweepClient


class DroppingTransport:
    """A transport whose event pages never contain the terminal event
    (simulating a lost/truncated stream)."""

    def __init__(self, inner):
        self.inner = inner

    def submit(self, spec_wire):
        return self.inner.submit(spec_wire)

    def status(self, job_id):
        return self.inner.status(job_id)

    def events(self, job_id, since, timeout):
        page = self.inner.events(job_id, since, timeout)
        page["events"] = [event for event in page["events"]
                          if event.get("event") != "done"]
        return page

    def result(self, job_id, timeout):
        return self.inner.result(job_id, timeout)


class TestIterProgressTermination:
    def test_quarantined_final_point_before_first_poll(self, tiny_spec,
                                                       monkeypatch):
        """The job finishes (last point quarantined) before the client
        ever polls; the stream must still terminate -- and carry the
        quarantined point."""
        point = (2, tiny_spec.ladder[-1])
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"{point[0]}:{point[1]}:raise")
        spec = dataclasses.replace(tiny_spec, fidelity="full",
                                   max_attempts=1)
        with LocalFabric(workers=1) as fabric:
            handle = fabric.client.submit(spec)
            with pytest.raises(QuarantinedPointError):
                fabric.client.result(handle, timeout=120.0)
            # First poll happens only now, after the job is done.
            events = list(fabric.client.iter_progress(
                handle, poll_timeout=0.2))
        assert events[-1]["event"] == "done"
        assert events[-1]["ok"] is False
        statuses = {e["point"]: e["status"] for e in events
                    if e.get("event") == "point"}
        assert statuses[f"{point[0]}/{point[1]}"] == "quarantined"

    def test_lost_done_event_falls_back_to_status(self, tiny_spec):
        """A stream that never shows 'done' must end via the status
        fallback instead of long-polling forever."""
        with LocalFabric(workers=1) as fabric:
            handle = fabric.client.submit(tiny_spec)
            fabric.client.result(handle, timeout=120.0)
            client = SweepClient(DroppingTransport(
                fabric.client.transport))
            events = list(client.iter_progress(handle,
                                               poll_timeout=0.1))
        assert all(e.get("event") != "done" for e in events)
        # Termination proves the fallback fired; the per-point events
        # still all arrived.
        points = {e["point"] for e in events
                  if e.get("event") == "point"}
        assert points == {f"{p}/{b}" for p, b in tiny_spec.configs()}


class FakeRequests:
    """Scripted HttpTransport._request stand-in for result() polling."""

    def __init__(self, payloads):
        self.payloads = list(payloads)
        self.calls = []

    def __call__(self, method, path, payload=None, timeout=None):
        self.calls.append(path)
        if not self.payloads:
            raise AssertionError("polled more times than scripted")
        return self.payloads.pop(0)


class TestHttpResultPolling:
    def test_blocking_result_spans_multiple_polls(self, monkeypatch):
        """timeout=None must keep polling (bounded requests) until the
        job finishes -- Broker.result semantics over HTTP."""
        transport = HttpTransport("http://fabric.test", poll_timeout=0.01)
        fake = FakeRequests([{"pending": True}, {"pending": True},
                             {"points": {"1/4096": {}}}])
        monkeypatch.setattr(transport, "_request", fake)
        payload = transport.result("job-1", timeout=None)
        assert payload == {"points": {"1/4096": {}}}
        assert len(fake.calls) == 3
        assert all("/jobs/job-1/result" in path for path in fake.calls)

    def test_finite_timeout_returns_none_when_still_pending(
            self, monkeypatch):
        transport = HttpTransport("http://fabric.test", poll_timeout=0.01)
        fake = FakeRequests([{"pending": True}] * 100_000)
        monkeypatch.setattr(transport, "_request", fake)
        assert transport.result("job-1", timeout=0.05) is None
        assert fake.calls  # it did poll before giving up
