"""SweepClient over the in-memory transport: the whole fabric without
sockets -- leases, heartbeats, workers, store, fault injection."""

import pytest

from repro.experiments.session import QuarantinedPointError, grid_sweep
from repro.fabric import FabricError, LocalFabric

from .conftest import counting_simulator


class TestLocalFabricEndToEnd:
    def test_grid_matches_local_grid_sweep(self, tiny_spec):
        local = grid_sweep(tiny_spec, cache=None)
        with LocalFabric(workers=2) as fabric:
            handle = fabric.client.submit(tiny_spec)
            remote = fabric.client.result(handle, timeout=120.0)
        assert set(remote) == set(local)
        for point in local:
            assert remote[point].as_dict() == local[point].as_dict()

    def test_progress_stream_shape(self, tiny_spec):
        with LocalFabric(workers=1) as fabric:
            handle = fabric.client.submit(tiny_spec)
            events = list(fabric.client.iter_progress(handle))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "done"
        points = [e for e in events
                  if e["event"] == "point" and "done" in e]
        assert {e["point"] for e in points} == \
               {f"{p}/{b}" for p, b in tiny_spec.configs()}
        assert events[-1]["ok"] is True

    def test_warm_resubmission_runs_nothing(self, tiny_spec,
                                            monkeypatch):
        with LocalFabric(workers=1) as fabric:
            first = fabric.client.submit(tiny_spec)
            fabric.client.result(first, timeout=120.0)
            calls = counting_simulator(monkeypatch)
            second = fabric.client.submit(tiny_spec)
            remote = fabric.client.result(second, timeout=10.0)
        assert second.store_hits == second.total == len(remote)
        assert second.pending_units == 0
        assert calls == []               # zero simulator invocations

    def test_status_reports_completion(self, tiny_spec):
        with LocalFabric(workers=1) as fabric:
            handle = fabric.client.submit(tiny_spec)
            fabric.client.result(handle, timeout=120.0)
            status = fabric.client.status(handle)
        assert status["state"] == "done"
        assert status["done"] == status["total"] == 4
        assert status["quarantined"] == {}


class TestFaultInjection:
    def test_poisoned_point_is_quarantined(self, tiny_spec, monkeypatch):
        """REPRO_FAULT_INJECT flows through the fabric's workers exactly
        as through a local session: retries, then quarantine, surfaced
        to the client as QuarantinedPointError."""
        import dataclasses
        point = (1, tiny_spec.ladder[0])
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"{point[0]}:{point[1]}:raise")
        spec = dataclasses.replace(tiny_spec, fidelity="full",
                                   max_attempts=2)
        with LocalFabric(workers=2) as fabric:
            handle = fabric.client.submit(spec)
            with pytest.raises(QuarantinedPointError) as caught:
                fabric.client.result(handle, timeout=120.0)
        assert set(caught.value.quarantined) == {point}
        assert "injected fault" in caught.value.quarantined[point]

    def test_unknown_job_raises_fabric_error(self, tiny_spec):
        with LocalFabric(workers=0) as fabric:
            with pytest.raises(FabricError, match="unknown job"):
                fabric.client.status("nope")
