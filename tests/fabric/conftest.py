"""Shared fixtures for the sweep-fabric tests."""

import pytest

from repro.core.config import KB
from repro.experiments import ExperimentProfile
from repro.experiments.runner import RunStats
from repro.experiments.spec import SweepSpec


@pytest.fixture
def tiny_profile():
    return ExperimentProfile(
        name="tiny", ladder_scale=8,
        barnes_bodies=32, barnes_steps=1,
        mp3d_particles=60, mp3d_steps=1,
        cholesky_n=64,
        multiprog_instructions=2000, multiprog_quantum=500)


@pytest.fixture
def tiny_spec(tiny_profile):
    """A 2x2 mp3d grid small enough for every end-to-end test."""
    return SweepSpec.parallel("mp3d", profile=tiny_profile,
                              ladder=(4 * KB, 8 * KB), procs=(1, 2),
                              retry_backoff=0.0)


def make_stats(seed: int = 0) -> RunStats:
    """A distinguishable, wire-safe RunStats payload."""
    return RunStats(execution_time=1000 + seed, read_miss_rate=0.25,
                    miss_rate=0.2, invalidations=seed, reads=100,
                    writes=50, events=200)


class FakeClock:
    """Deterministic monotonic clock for lease-expiry tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def counting_simulator(monkeypatch):
    """Count every real simulator invocation (any thread)."""
    from repro.experiments import runner
    real = runner.run_simulation
    calls = []

    def counted(config, application, **kwargs):
        calls.append(type(application).__name__)
        return real(config, application, **kwargs)

    monkeypatch.setattr(runner, "run_simulation", counted)
    return calls
