"""The artifact store: local-cache interop and idempotent publish."""

from array import array

import pytest

from repro.experiments.runner import ResultCache
from repro.fabric.store import (ArtifactStore, MemoryResultCache,
                                MemoryTraceCache)
from repro.trace.record import TraceCache

from .conftest import make_stats


class TestLocalLayoutInterop:
    """``ArtifactStore(dir)`` IS the local cache, byte for byte."""

    def test_store_writes_are_plain_result_cache_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.publish("some-key", make_stats(7))
        direct = ResultCache(tmp_path).get("some-key")
        assert direct is not None
        assert direct.as_dict() == make_stats(7).as_dict()

    def test_local_sweep_warmth_is_store_warmth(self, tmp_path):
        ResultCache(tmp_path).put("local-key", make_stats(3))
        assert (ArtifactStore(tmp_path).get_stats("local-key").as_dict()
                == make_stats(3).as_dict())

    def test_tapes_share_the_trace_cache_layout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        streams = {0: array("q", [1, 2, 3]), 1: array("q", [4, 5])}
        store.put_streams("sig", streams)
        direct = TraceCache(tmp_path / "traces").get("sig")
        assert direct is not None
        assert {p: list(s) for p, s in direct.items()} == \
               {p: list(s) for p, s in streams.items()}

    def test_default_honours_cache_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        store = ArtifactStore.default()
        assert store.directory == tmp_path / "cache"


class TestIdempotentPublish:
    @pytest.fixture(params=["memory", "disk"])
    def store(self, request, tmp_path):
        if request.param == "memory":
            return ArtifactStore.in_memory()
        return ArtifactStore(tmp_path)

    def test_second_publish_is_dropped(self, store):
        assert store.publish("key", make_stats(1)) is True
        # A duplicate completion never rewrites the artifact -- even a
        # (hypothetically) different payload under the same key.
        assert store.publish("key", make_stats(99)) is False
        assert store.get_stats("key").as_dict() == make_stats(1).as_dict()

    def test_memory_cache_counts_real_writes(self):
        store = ArtifactStore.in_memory()
        store.publish("a", make_stats(1))
        store.publish("a", make_stats(2))
        store.publish("b", make_stats(3))
        assert store.results.puts == 2


class TestMemoryCaches:
    def test_trace_streams_are_copied(self):
        cache = MemoryTraceCache()
        original = {0: array("q", [1, 2])}
        cache.put("sig", original)
        original[0][0] = 99
        fetched = cache.get("sig")
        assert list(fetched[0]) == [1, 2]
        fetched[0][0] = 77
        assert list(cache.get("sig")[0]) == [1, 2]

    def test_missing_keys(self):
        assert MemoryResultCache().get("nope") is None
        assert MemoryTraceCache().get("nope") is None

    def test_store_requires_some_backing(self):
        with pytest.raises(ValueError):
            ArtifactStore()
