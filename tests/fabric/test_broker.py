"""Broker lease lifecycle: heartbeats, expiry, work stealing,
idempotent duplicate completion."""

import pytest

from repro.fabric.broker import Broker
from repro.fabric.store import ArtifactStore
from repro.fabric.wire import FabricError, point_label, sweep_from_wire

from .conftest import FakeClock, make_stats


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def broker(clock):
    return Broker(ArtifactStore.in_memory(), lease_ttl=30.0,
                  max_unit_attempts=3, clock=clock)


def _complete_unit(broker, worker, lease, seed0=0):
    """Report every point of ``lease`` as computed."""
    labels = [f"{lease['procs']}/{paper_bytes}"
              for paper_bytes in lease["ladder"]]
    results = {label: make_stats(seed0 + i).as_dict()
               for i, label in enumerate(labels)}
    return broker.complete(worker, lease["unit"], results=results)


class TestSubmitAndSharding:
    def test_one_unit_per_row(self, broker, tiny_spec):
        handle = broker.submit(tiny_spec)
        assert handle["total"] == 4
        assert handle["pending_units"] == len(tiny_spec.procs)
        assert handle["state"] == "running"

    def test_row_units_keep_the_ladder_together(self, broker, tiny_spec):
        broker.submit(tiny_spec)
        lease = broker.lease("w1")
        assert lease["ladder"] == sorted(lease["ladder"])
        assert len(lease["ladder"]) == len(tiny_spec.ladder)
        assert lease["spec"] == tiny_spec.to_wire()

    def test_warm_submission_creates_no_units(self, broker, tiny_spec):
        for point, config in tiny_spec.configs().items():
            broker.store.publish(tiny_spec.point_key(config),
                                 make_stats(point[0]))
        handle = broker.submit(tiny_spec)
        assert handle["state"] == "done"
        assert handle["pending_units"] == 0
        assert handle["store_hits"] == handle["total"] == 4
        assert broker.lease("w1") is None
        events = broker.events_since(handle["job"], 0, timeout=0)[0]
        statuses = [e["status"] for e in events if e["event"] == "point"]
        assert statuses == ["store"] * 4

    def test_miss_surface_specs_rejected(self, broker, tiny_profile):
        from repro.experiments.spec import SweepSpec
        surface = SweepSpec.miss_surface("mp3d", profile=tiny_profile)
        with pytest.raises(FabricError, match="miss-surface"):
            broker.submit(surface)


class TestLeaseLifecycle:
    def test_heartbeat_keeps_a_slow_worker_leased(self, broker, clock,
                                                  tiny_spec):
        broker.submit(tiny_spec)
        lease = broker.lease("w1")
        broker.lease("w2")               # drain the other unit
        for _ in range(4):
            clock.advance(20.0)          # 80s total, ttl is 30s
            broker.heartbeat("w1")
            broker.heartbeat("w2")
        assert broker.lease("w3") is None    # nothing expired to steal
        # w1's unit was never stolen: completing it still lands.
        done = _complete_unit(broker, "w1", lease)
        assert done["stale"] is False

    def test_expiry_releases_to_second_worker(self, broker, clock,
                                              tiny_spec):
        handle = broker.submit(tiny_spec)
        first = broker.lease("w1")
        assert first["attempt"] == 1
        clock.advance(31.0)              # w1 went silent past the ttl
        # w2's poll reaps the expired lease and steals the unit.
        leases = [broker.lease("w2"), broker.lease("w2")]
        stolen = [l for l in leases if l and l["unit"] == first["unit"]]
        assert stolen and stolen[0]["attempt"] == 2
        events = broker.events_since(handle["job"], 0, timeout=0)[0]
        assert any(e.get("status") == "expired" for e in events)

    def test_duplicate_completion_is_idempotent(self, broker, clock,
                                                tiny_spec):
        """Heartbeat expiry -> re-lease -> both workers complete: no
        double-write, no lost point."""
        handle = broker.submit(tiny_spec)
        first = broker.lease("w1")       # w1 takes both units... and stalls
        broker.lease("w1")
        clock.advance(31.0)
        second = broker.lease("w2")      # w2 steals the first one
        assert second["unit"] == first["unit"]

        done2 = _complete_unit(broker, "w2", second, seed0=10)
        assert done2["stale"] is False and done2["settled"] == len(
            second["ladder"])
        puts_after_w2 = broker.store.results.puts

        # The straggler wakes up and reports the same unit.
        done1 = _complete_unit(broker, "w1", first, seed0=90)
        assert done1["stale"] is True
        assert done1["settled"] == 0                  # nothing re-settled
        assert broker.store.results.puts == puts_after_w2  # no double-write

        # w2's results stand; w1's conflicting payload was dropped.
        job = broker.jobs[handle["job"]]
        row_point = (second["procs"], second["ladder"][0])
        assert job.results[row_point].as_dict() == make_stats(10).as_dict()

        # ...and no point was lost: the rest of the grid still resolves.
        other = broker.lease("w3")
        _complete_unit(broker, "w3", other, seed0=50)
        result = broker.result(handle["job"], timeout=1.0)
        assert result is not None
        assert len(sweep_from_wire(result["points"])) == 4
        assert result["quarantined"] == {}

    def test_attempt_budget_quarantines_the_row(self, clock, tiny_spec):
        broker = Broker(ArtifactStore.in_memory(), lease_ttl=30.0,
                        max_unit_attempts=2, clock=clock)
        handle = broker.submit(tiny_spec)
        units = set()
        for attempt in range(2):
            lease = broker.lease(f"w{attempt}")
            while lease is not None:
                units.add(lease["unit"])
                lease = broker.lease(f"w{attempt}")
            clock.advance(31.0)
        broker.lease("w-final")          # triggers the final reap
        status = broker.status(handle["job"])
        assert status["state"] == "done"
        assert len(status["quarantined"]) == 4
        assert all("lease expired" in reason
                   for reason in status["quarantined"].values())

    def test_fail_requeues_within_budget(self, broker, tiny_spec):
        broker.submit(tiny_spec)
        lease = broker.lease("w1")
        broker.fail("w1", lease["unit"], "worker exploded")
        leases = [broker.lease("w2"), broker.lease("w2")]
        stolen = [l for l in leases if l and l["unit"] == lease["unit"]]
        assert stolen and stolen[0]["attempt"] == 2
        assert broker.registry.counters["fabric.units.failed"] == 1

    def test_progress_with_published_stats_settles_points(self, broker,
                                                          tiny_spec):
        handle = broker.submit(tiny_spec)
        lease = broker.lease("w1")
        procs = lease["procs"]
        for i, paper_bytes in enumerate(lease["ladder"]):
            point = (procs, paper_bytes)
            key = tiny_spec.point_key(tiny_spec.configs()[point])
            broker.store.publish(key, make_stats(i))
            broker.progress("w1", lease["unit"], point_label(point),
                            "computed")
        # Every point of the unit settled via the store: the unit is
        # done without an explicit complete() call.
        assert broker._units[lease["unit"]].state == "done"
        status = broker.status(handle["job"])
        assert status["done"] == len(lease["ladder"])


class TestErrors:
    def test_unknown_job(self, broker):
        with pytest.raises(FabricError, match="unknown job"):
            broker.status("nope")

    def test_unknown_unit(self, broker):
        with pytest.raises(FabricError, match="unknown work unit"):
            broker.complete("w1", "nope", results={})

    def test_foreign_point_label_rejected(self, broker, tiny_spec):
        broker.submit(tiny_spec)
        lease = broker.lease("w1")
        with pytest.raises(FabricError, match="not in job"):
            broker.progress("w1", lease["unit"], "64/64", "computed")
