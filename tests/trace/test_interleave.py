"""Tests for the timing-feedback interleaver (the Tango-Lite equivalent)."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import MultiprocessorSystem
from repro.trace.events import (Barrier, Compute, LockAcquire, LockRelease,
                                Read, TaskDequeue, TaskEnqueue, Write)
from repro.trace.interleave import (DeadlockError, SyncProtocolError,
                                    TimingInterleaver)


def make_interleaver(**config_overrides):
    defaults = dict(clusters=1, processors_per_cluster=2)
    defaults.update(config_overrides)
    config = SystemConfig(**defaults)
    system = MultiprocessorSystem(config)
    return system, TimingInterleaver(system)


class TestBasicExecution:
    def test_single_process_compute(self):
        _, interleaver = make_interleaver(processors_per_cluster=1)
        interleaver.add_process(0, iter([Compute(100)]))
        assert interleaver.run() == 100

    def test_single_process_memory(self):
        system, interleaver = make_interleaver(processors_per_cluster=1)
        interleaver.add_process(0, iter([Read(0x100), Read(0x100)]))
        # miss (101) then hit (+1)
        assert interleaver.run() == 102

    def test_execution_time_is_the_latest_finisher(self):
        _, interleaver = make_interleaver()
        interleaver.add_process(0, iter([Compute(10)]))
        interleaver.add_process(1, iter([Compute(500)]))
        assert interleaver.run() == 500

    def test_empty_interleaver_refuses_to_run(self):
        _, interleaver = make_interleaver()
        with pytest.raises(RuntimeError):
            interleaver.run()

    def test_duplicate_process_id_rejected(self):
        _, interleaver = make_interleaver()
        interleaver.add_process(0, iter([Compute(1)]))
        with pytest.raises(ValueError):
            interleaver.add_process(0, iter([Compute(1)]))

    def test_out_of_range_process_id_rejected(self):
        _, interleaver = make_interleaver()  # 2 processors
        with pytest.raises(ValueError):
            interleaver.add_process(2, iter([Compute(1)]))

    def test_max_cycles_aborts_runaway(self):
        _, interleaver = make_interleaver()
        interleaver.add_process(0, iter([Compute(10_000)]))
        with pytest.raises(RuntimeError):
            interleaver.run(max_cycles=1000)

    def test_non_event_yield_raises(self):
        _, interleaver = make_interleaver()
        interleaver.add_process(0, iter(["not an event"]))
        with pytest.raises(TypeError):
            interleaver.run()

    def test_events_processed_counter(self):
        _, interleaver = make_interleaver()
        interleaver.add_process(0, iter([Compute(1), Read(0), Write(0)]))
        interleaver.add_process(1, iter([Compute(5)]))
        interleaver.run()
        assert interleaver.events_processed == 4


class TestTimingFeedback:
    def test_interleaving_respects_memory_stalls(self):
        """Process 0 misses (stalls 100 cycles) while process 1 computes;
        their subsequent references reach the cache in stall-adjusted
        order: process 1's second read comes first and warms the line."""
        system, interleaver = make_interleaver()
        interleaver.add_process(0, iter([Read(0x2000), Read(0x3000)]))
        interleaver.add_process(1, iter([Compute(30), Read(0x3000)]))
        interleaver.run()
        # Process 1 read 0x3000 at ~30 (a miss); process 0 reads it at
        # ~101 and must hit on the shared line.
        stats = system.clusters[0].scc.stats
        assert stats.read_misses == 2  # 0x2000 once, 0x3000 once
        assert stats.reads == 3

    def test_earliest_process_runs_first(self):
        """References from different processors hit the caches in local
        time order, so a long computation delays later references."""
        system, interleaver = make_interleaver()
        order = []

        def proc_a():
            yield Compute(10)
            order.append("a")
            yield Write(0x100)

        def proc_b():
            yield Compute(1000)
            order.append("b")
            yield Write(0x200)

        interleaver.add_process(0, proc_a())
        interleaver.add_process(1, proc_b())
        interleaver.run()
        assert order == ["a", "b"]


class TestLocks:
    def test_uncontended_lock_costs_overhead(self):
        _, interleaver = make_interleaver(processors_per_cluster=1)
        interleaver.add_process(0, iter([LockAcquire(1), LockRelease(1)]))
        config_overhead = interleaver.lock_overhead
        assert interleaver.run() == 2 * config_overhead

    def test_contended_lock_serializes(self):
        system, interleaver = make_interleaver()

        def critical(pid):
            yield LockAcquire(9)
            yield Compute(100)
            yield LockRelease(9)

        interleaver.add_process(0, critical(0))
        interleaver.add_process(1, critical(1))
        time = interleaver.run()
        # Two back-to-back critical sections of >= 100 cycles each.
        assert time >= 200
        stats = system.stats(time)
        total_sync = sum(p.sync_stall_cycles for p in stats.processors)
        assert total_sync >= 100

    def test_lock_grants_are_fifo(self):
        _, interleaver = make_interleaver(processors_per_cluster=4,
                                          clusters=1)
        order = []

        def worker(pid, start_delay):
            yield Compute(start_delay)
            yield LockAcquire(0)
            order.append(pid)
            yield Compute(50)
            yield LockRelease(0)

        for pid in range(4):
            interleaver.add_process(pid, worker(pid, pid + 1))
        interleaver.run()
        assert order == [0, 1, 2, 3]

    def test_releasing_unheld_lock_raises(self):
        _, interleaver = make_interleaver()
        interleaver.add_process(0, iter([LockRelease(5)]))
        with pytest.raises(SyncProtocolError):
            interleaver.run()

    def test_deadlock_is_detected(self):
        _, interleaver = make_interleaver()

        def holder():
            yield LockAcquire(1)
            yield LockAcquire(2)
            yield LockRelease(2)
            yield LockRelease(1)

        def other():
            yield LockAcquire(2)
            yield LockAcquire(1)
            yield LockRelease(1)
            yield LockRelease(2)

        interleaver.add_process(0, holder())
        interleaver.add_process(1, other())
        with pytest.raises(DeadlockError):
            interleaver.run()


class TestBarriers:
    def test_barrier_releases_at_max_arrival(self):
        _, interleaver = make_interleaver()
        finish = {}

        def worker(pid, work):
            yield Compute(work)
            yield Barrier(0, 2)
            finish[pid] = True
            yield Compute(1)

        interleaver.add_process(0, worker(0, 10))
        interleaver.add_process(1, worker(1, 300))
        time = interleaver.run()
        overhead = interleaver.barrier_overhead
        assert time == 300 + overhead + 1
        assert finish == {0: True, 1: True}

    def test_barrier_is_reusable(self):
        _, interleaver = make_interleaver()

        def worker(pid):
            for _ in range(3):
                yield Compute(10)
                yield Barrier(7, 2)

        interleaver.add_process(0, worker(0))
        interleaver.add_process(1, worker(1))
        overhead = interleaver.barrier_overhead
        assert interleaver.run() == 3 * (10 + overhead)

    def test_single_process_barrier_passes_through(self):
        _, interleaver = make_interleaver(processors_per_cluster=1)
        interleaver.add_process(0, iter([Barrier(0, 1), Compute(5)]))
        assert interleaver.run() == interleaver.barrier_overhead + 5

    def test_overfull_barrier_raises(self):
        _, interleaver = make_interleaver(processors_per_cluster=4,
                                          clusters=1)

        def worker():
            yield Barrier(0, 2)

        # Barrier opens when 2 arrive; a third arrival at the same barrier
        # id before re-arming is a new waiting set, which is legal; but a
        # count of zero is not.
        interleaver.add_process(0, iter([Barrier(0, 0)]))
        with pytest.raises(SyncProtocolError):
            interleaver.run()

    def test_waiting_time_counts_as_sync_stall(self):
        system, interleaver = make_interleaver()

        def fast():
            yield Compute(10)
            yield Barrier(0, 2)

        def slow():
            yield Compute(500)
            yield Barrier(0, 2)

        interleaver.add_process(0, fast())
        interleaver.add_process(1, slow())
        time = interleaver.run()
        stats = system.stats(time)
        assert stats.processors[0].sync_stall_cycles >= 490


class TestTaskQueues:
    def test_enqueue_dequeue_roundtrip(self):
        _, interleaver = make_interleaver(processors_per_cluster=1)
        received = []

        def worker():
            yield TaskEnqueue(0, "a")
            yield TaskEnqueue(0, "b")
            received.append((yield TaskDequeue(0)))
            received.append((yield TaskDequeue(0)))
            received.append((yield TaskDequeue(0)))

        interleaver.add_process(0, worker())
        interleaver.run()
        assert received == ["a", "b", None]

    def test_queue_is_shared_between_processes(self):
        _, interleaver = make_interleaver()
        got = []

        def producer():
            yield Compute(10)
            yield TaskEnqueue(3, 42)

        def consumer():
            item = None
            while item is None:
                yield Compute(5)
                item = yield TaskDequeue(3)
            got.append(item)

        interleaver.add_process(0, producer())
        interleaver.add_process(1, consumer())
        interleaver.run()
        assert got == [42]


class TestTaskQueueProtocol:
    def test_enqueue_none_is_a_protocol_error(self):
        """None is the empty-queue dequeue response; letting it into a
        queue would make it indistinguishable from 'no work'."""
        _, interleaver = make_interleaver()

        def worker():
            yield TaskEnqueue(0, None)

        interleaver.add_process(0, worker())
        interleaver.add_process(1, iter([Compute(1)]))
        with pytest.raises(SyncProtocolError):
            interleaver.run()

    def test_polling_an_untouched_queue_allocates_nothing(self):
        """A dequeue poll on a queue nothing ever enqueued to must not
        materialize the queue (pollers used to leak one deque per id)."""
        _, interleaver = make_interleaver()
        responses = []

        def poller():
            responses.append((yield TaskDequeue(9)))
            responses.append((yield TaskDequeue(10)))

        interleaver.add_process(0, poller())
        interleaver.add_process(1, iter([Compute(1)]))
        interleaver.run()
        assert responses == [None, None]
        assert interleaver._queues == {}
