"""Tests for stream utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.trace.events import (Barrier, Compute, Read, TaskDequeue, Write)
from repro.trace.stream import (coalesce_compute, event_histogram,
                                materialize, reference_count, replay)


class TestMaterialize:
    def test_roundtrip(self):
        events = [Read(1), Compute(5), Write(2)]
        assert materialize(iter(events)) == events
        assert list(replay(events)) == events

    def test_dynamic_stream_rejected(self):
        with pytest.raises(TypeError):
            materialize(iter([Read(1), TaskDequeue(0)]))


class TestCoalesce:
    def test_adjacent_computes_merge(self):
        events = [Compute(5), Compute(3), Read(1), Compute(2)]
        assert list(coalesce_compute(events)) == \
            [Compute(8), Read(1), Compute(2)]

    def test_non_adjacent_computes_stay_separate(self):
        events = [Compute(1), Read(0), Compute(1)]
        assert list(coalesce_compute(events)) == events

    def test_trailing_compute_is_flushed(self):
        assert list(coalesce_compute([Read(0), Compute(7)])) == \
            [Read(0), Compute(7)]

    def test_zero_cycle_computes_vanish(self):
        assert list(coalesce_compute([Compute(0), Read(0)])) == [Read(0)]

    @given(st.lists(st.one_of(
        st.builds(Compute, st.integers(0, 100)),
        st.builds(Read, st.integers(0, 1000)),
        st.builds(Write, st.integers(0, 1000)))))
    def test_coalescing_preserves_total_time_and_references(self, events):
        coalesced = list(coalesce_compute(events))
        total = sum(e.cycles for e in events if isinstance(e, Compute))
        total_after = sum(e.cycles for e in coalesced
                          if isinstance(e, Compute))
        assert total == total_after
        refs = [e for e in events if not isinstance(e, Compute)]
        refs_after = [e for e in coalesced if not isinstance(e, Compute)]
        assert refs == refs_after


class TestCounting:
    def test_histogram(self):
        events = [Read(0), Read(1), Write(0), Barrier(0, 2)]
        histogram = event_histogram(events)
        assert histogram[Read] == 2
        assert histogram[Write] == 1
        assert histogram[Barrier] == 1

    def test_reference_count(self):
        assert reference_count([Read(0), Write(1), Compute(9)]) == 2
