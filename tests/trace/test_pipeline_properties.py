"""Metamorphic and end-to-end properties of the trace pipeline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import KB, SystemConfig
from repro.core.system import MultiprocessorSystem
from repro.trace.events import Compute, Read, Write
from repro.trace.interleave import TimingInterleaver
from repro.trace.stream import coalesce_compute
from repro.trace.tracefile import load_trace, save_trace

EVENTS = st.lists(st.one_of(
    st.builds(Compute, st.integers(0, 50)),
    st.builds(Read, st.integers(0, 4000).map(lambda x: x * 8)),
    st.builds(Write, st.integers(0, 4000).map(lambda x: x * 8))),
    min_size=1, max_size=150)


def run_streams(streams, scc_size=1 * KB):
    config = SystemConfig(clusters=2, processors_per_cluster=2,
                          scc_size=scc_size)
    system = MultiprocessorSystem(config)
    interleaver = TimingInterleaver(system)
    for proc, events in enumerate(streams):
        interleaver.add_process(proc, iter(events))
    time = interleaver.run()
    return time, system.stats(time)


COMPUTE_ONLY = st.lists(st.builds(Compute, st.integers(0, 50)),
                        min_size=1, max_size=100)


class TestCoalescingIsTimingNeutral:
    @given(EVENTS, COMPUTE_ONLY)
    @settings(max_examples=60, deadline=None)
    def test_merging_compute_events_changes_nothing(self, a, b):
        """Coalescing adjacent Compute events is a pure trace
        compression: execution time and every cache counter agree.

        The property is stated with a single memory-using process: two
        processes whose misses reach the bus in the *same cycle* may
        legitimately be granted in either order (arbitration ties), and
        event boundaries are a valid tie-breaker, so multi-process
        streams are only equal modulo tie order.
        """
        plain_time, plain_stats = run_streams(
            [a, b, [Compute(1)], [Compute(1)]])
        squeezed_time, squeezed_stats = run_streams(
            [list(coalesce_compute(a)), list(coalesce_compute(b)),
             [Compute(1)], [Compute(1)]])
        assert squeezed_time == plain_time
        assert (squeezed_stats.total_scc.as_dict()
                == plain_stats.total_scc.as_dict())


class TestTraceFileRoundtripPreservesSimulation:
    @given(EVENTS, EVENTS)
    @settings(max_examples=30, deadline=None)
    def test_saved_and_reloaded_traces_simulate_identically(self, a, b):
        import tempfile
        from pathlib import Path
        with tempfile.TemporaryDirectory() as directory:
            paths = []
            for index, events in enumerate((a, b)):
                path = Path(directory) / f"p{index}.trace"
                save_trace(path, events)
                paths.append(path)
            direct_time, direct_stats = run_streams(
                [a, b, [Compute(1)], [Compute(1)]])
            replay_time, replay_stats = run_streams(
                [load_trace(paths[0]), load_trace(paths[1]),
                 [Compute(1)], [Compute(1)]])
        assert replay_time == direct_time
        assert (replay_stats.total_scc.as_dict()
                == direct_stats.total_scc.as_dict())


class TestComputeOnlyWorkloadsAreExact:
    @given(st.lists(st.lists(st.integers(0, 100), min_size=1,
                             max_size=20),
                    min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_execution_time_is_the_longest_chain(self, chains):
        streams = [[Compute(c) for c in chain] for chain in chains]
        time, stats = run_streams(streams + [[Compute(0)]] *
                                  (4 - len(streams)))
        assert time == max(sum(chain) for chain in chains)
        assert stats.total_scc.accesses == 0
