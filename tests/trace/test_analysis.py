"""Tests for the trace-analysis tools (stack distances, MRC, working set)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.analysis import (DistanceHistogram, data_lines,
                                  distance_histogram, miss_ratio_curve,
                                  stack_distances, working_set_lines)
from repro.trace.events import Compute, Read, Write
from repro.trace.packed import (OP_COMPUTE, OP_READ, OP_READ_SPAN,
                                OP_WRITE_SPAN, PackedChunk, encode_events)


def reads(addresses):
    return [Read(addr) for addr in addresses]


def brute_force_distances(lines):
    """Reference implementation: explicit LRU stack."""
    stack = []
    result = []
    for line in lines:
        if line in stack:
            index = stack.index(line)
            result.append(index)
            stack.pop(index)
        else:
            result.append(None)
        stack.insert(0, line)
    return result


class TestDataLines:
    def test_line_mapping(self):
        events = [Read(0), Read(15), Read(16), Write(32), Compute(5)]
        assert data_lines(events) == [0, 0, 1, 2]

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            data_lines([Read(0)], line_size=24)


class TestStackDistances:
    def test_cold_references_are_none(self):
        assert stack_distances(reads([0, 16, 32])) == [None, None, None]

    def test_immediate_reuse_is_distance_zero(self):
        assert stack_distances(reads([0, 0])) == [None, 0]

    def test_textbook_example(self):
        # Lines a b c b a: distances None None None 1 2.
        events = reads([0, 16, 32, 16, 0])
        assert stack_distances(events) == [None, None, None, 1, 2]

    def test_multiple_reuses(self):
        events = reads([0, 16, 0, 16, 0])
        assert stack_distances(events) == [None, None, 1, 1, 1]

    @given(st.lists(st.integers(0, 12), min_size=1, max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force_lru_stack(self, lines):
        events = reads([line * 16 for line in lines])
        assert stack_distances(events) == brute_force_distances(lines)


class TestMissRatioCurve:
    def test_monotone_nonincreasing_in_size(self):
        events = reads([i * 16 for i in range(50)] * 4)
        curve = miss_ratio_curve(events, (64, 256, 1024))
        values = [curve[size] for size in sorted(curve)]
        assert values == sorted(values, reverse=True)

    def test_cache_covering_everything_gets_only_cold_misses(self):
        events = reads([0, 16, 32, 0, 16, 32])
        curve = miss_ratio_curve(events, (1024,))
        assert curve[1024] == pytest.approx(0.5)   # 3 cold / 6 refs

    def test_single_line_cache(self):
        events = reads([0, 0, 16, 16])
        curve = miss_ratio_curve(events, (16,))
        assert curve[16] == pytest.approx(0.5)

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            miss_ratio_curve(reads([0]), ())
        with pytest.raises(ValueError):
            miss_ratio_curve([Compute(1)], (64,))
        with pytest.raises(ValueError):
            miss_ratio_curve(reads([0]), (8,))

    @given(st.lists(st.integers(0, 30), min_size=5, max_size=300),
           st.integers(1, 16))
    @settings(max_examples=80, deadline=None)
    def test_matches_direct_lru_simulation(self, lines, cache_lines):
        """The one-pass histogram must agree with simulating the LRU
        cache directly."""
        events = reads([line * 16 for line in lines])
        curve = miss_ratio_curve(events, (cache_lines * 16,))
        # Direct simulation.
        stack = []
        misses = 0
        for line in lines:
            if line in stack:
                stack.remove(line)
            else:
                misses += 1
                if len(stack) >= cache_lines:
                    stack.pop()
            stack.insert(0, line)
        assert curve[cache_lines * 16] == pytest.approx(
            misses / len(lines))


class TestPackedSources:
    """The packed fast paths must agree exactly with the event paths."""

    def test_raw_array_and_chunk_match_events(self):
        events = [Read(0), Write(16), Compute(3), Read(0), Read(48)]
        packed = encode_events(events)
        assert data_lines(packed) == data_lines(events)
        assert data_lines(PackedChunk(packed)) == data_lines(events)
        assert stack_distances(packed) == stack_distances(events)

    def test_chunks_inside_event_iterables(self):
        head = [Read(0), Read(16)]
        tail = [Write(16), Read(32)]
        mixed = head + [PackedChunk(encode_events(tail))]
        assert data_lines(mixed) == data_lines(head + tail)

    def test_span_opcodes_expand(self):
        from array import array
        data = array("q", [OP_READ_SPAN, 0, 64, 16,
                           OP_WRITE_SPAN, 0, 32, 16,
                           OP_COMPUTE, 9,
                           OP_READ, 160])
        assert data_lines(data) == [0, 1, 2, 3, 0, 1, 10]

    def test_unknown_opcode_rejected(self):
        from array import array
        with pytest.raises(ValueError):
            data_lines(array("q", [99, 0]))

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 40)),
                    min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_packed_path_equivalence(self, refs):
        events = [Write(line * 16) if is_write else Read(line * 16)
                  for is_write, line in refs]
        packed = encode_events(events)
        assert data_lines(packed) == data_lines(events)
        assert stack_distances(packed) == stack_distances(events)


class TestDistanceHistogram:
    """One pass over the tape serves every downstream analysis."""

    def test_shared_histogram_matches_per_call_results(self):
        events = reads([i * 16 for i in range(20)] * 3 + [0, 0, 16])
        histogram = distance_histogram(events)
        assert isinstance(histogram, DistanceHistogram)
        sizes = (64, 256, 1024)
        assert (miss_ratio_curve(histogram, sizes)
                == miss_ratio_curve(events, sizes))
        assert (working_set_lines(histogram, fraction=0.9)
                == working_set_lines(events, fraction=0.9))

    def test_counts(self):
        histogram = distance_histogram(reads([0, 16, 0, 16]))
        assert histogram.cold == 2
        assert histogram.total == 4
        assert histogram.miss_count(1) == 4      # distance 1 >= 1 line
        assert histogram.miss_count(2) == 2
        assert histogram.miss_ratio(2) == pytest.approx(0.5)

    def test_empty_and_bad_inputs(self):
        empty = distance_histogram([Compute(1)])
        with pytest.raises(ValueError):
            empty.miss_ratio(4)
        with pytest.raises(ValueError):
            empty.working_set_lines()
        with pytest.raises(ValueError):
            distance_histogram(reads([0])).miss_count(0)


class TestWorkingSet:
    def test_uniform_trace(self):
        events = reads([0, 16, 32, 48])
        assert working_set_lines(events, fraction=1.0) == 4
        assert working_set_lines(events, fraction=0.5) == 2

    def test_skewed_trace(self):
        events = reads([0] * 90 + [i * 16 for i in range(1, 11)])
        assert working_set_lines(events, fraction=0.9) == 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            working_set_lines(reads([0]), fraction=0.0)
        with pytest.raises(ValueError):
            working_set_lines([Compute(1)])
