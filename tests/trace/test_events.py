"""Tests for the trace event vocabulary."""

from repro.trace.events import (Barrier, Compute, Ifetch, LockAcquire,
                                LockRelease, Read, TaskDequeue, TaskEnqueue,
                                Write, is_memory_event)


class TestEventBasics:
    def test_events_are_hashable_and_comparable(self):
        assert Read(0x10) == Read(0x10)
        assert Read(0x10) != Write(0x10)
        assert len({Read(1), Read(1), Write(1)}) == 2

    def test_ifetch_default_count(self):
        assert Ifetch(0x100).count == 1

    def test_is_memory_event(self):
        assert is_memory_event(Read(0))
        assert is_memory_event(Write(0))
        assert is_memory_event(Ifetch(0))
        assert not is_memory_event(Compute(1))
        assert not is_memory_event(LockAcquire(0))
        assert not is_memory_event(LockRelease(0))
        assert not is_memory_event(Barrier(0, 2))
        assert not is_memory_event(TaskEnqueue(0, 1))
        assert not is_memory_event(TaskDequeue(0))

    def test_events_are_immutable(self):
        import dataclasses
        import pytest
        with pytest.raises(dataclasses.FrozenInstanceError):
            Read(1).addr = 2
