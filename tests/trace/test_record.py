"""Tests for whole-stream record/replay and the disk trace cache."""

from array import array

import pytest

from repro.core.config import SystemConfig
from repro.simulation import run_simulation
from repro.trace.events import TaskDequeue, TaskEnqueue
from repro.trace.record import (ReplayApplication, StreamRecorder,
                                TraceCache, default_trace_cache)
from repro.workloads.base import TracedApplication
from repro.workloads.barnes_hut import BarnesHut


def fingerprint(result):
    stats = result.stats
    total = stats.total_scc
    return (stats.execution_time, result.events_processed, total.reads,
            total.writes, total.read_misses, total.write_misses,
            stats.total_invalidations)


def p1_config(scc_size=2048):
    return SystemConfig(clusters=1, processors_per_cluster=1,
                        scc_size=scc_size)


class TestStreamRecorder:
    def test_recording_is_transparent(self):
        """A recorded run produces exactly the stats of a direct run."""
        config = p1_config()
        direct = run_simulation(config, BarnesHut(n_bodies=32, steps=1))
        recorder = StreamRecorder(BarnesHut(n_bodies=32, steps=1))
        recorded = run_simulation(config, recorder)
        assert fingerprint(recorded) == fingerprint(direct)
        assert recorder.streams is not None
        assert sum(len(s) for s in recorder.streams.values()) > 0

    def test_replay_matches_direct_on_other_configs(self):
        """The point of the trace cache: a stream recorded at one SCC
        size replays bit-identically at another."""
        recorder = StreamRecorder(BarnesHut(n_bodies=32, steps=1))
        run_simulation(p1_config(1024), recorder)
        for scc in (2048, 8192):
            direct = run_simulation(p1_config(scc),
                                    BarnesHut(n_bodies=32, steps=1))
            replay = run_simulation(
                p1_config(scc), ReplayApplication(recorder.streams))
            assert fingerprint(replay) == fingerprint(direct)

    def test_unencodable_stream_fails_soft(self):
        """A workload enqueueing non-int items cannot be taped, but the
        simulation itself must still run to completion."""

        class OpaqueItems(TracedApplication):
            name = "opaque"

            def processes(self, config):
                def proc():
                    yield TaskEnqueue(0, "opaque-object")
                    assert (yield TaskDequeue(0)) == "opaque-object"
                return {0: proc()}

        recorder = StreamRecorder(OpaqueItems())
        result = run_simulation(p1_config(), recorder)
        assert result.events_processed == 2
        assert recorder.failed
        assert recorder.streams is None

    def test_replay_rejects_wrong_processor_count(self):
        recorder = StreamRecorder(BarnesHut(n_bodies=32, steps=1))
        run_simulation(p1_config(), recorder)
        replay = ReplayApplication(recorder.streams)
        two_procs = SystemConfig(clusters=1, processors_per_cluster=2)
        with pytest.raises(ValueError):
            replay.processes(two_procs)


class TestTraceCache:
    def test_round_trip(self, tmp_path):
        cache = TraceCache(tmp_path)
        streams = {0: array("q", [1, 100, 3, 25]),
                   1: array("q", [2, 200])}
        assert cache.get("sig") is None
        cache.put("sig", streams)
        back = cache.get("sig")
        assert back is not None
        assert {p: list(s) for p, s in back.items()} == {
            0: [1, 100, 3, 25], 1: [2, 200]}

    def test_signature_mismatch_is_a_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.put("sig-a", {0: array("q", [3, 10])})
        assert cache.get("sig-b") is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.put("sig", {0: array("q", [3, 10])})
        for path in tmp_path.glob("*.trace"):
            path.write_bytes(b"garbage")
        assert cache.get("sig") is None

    def test_empty_stream_round_trips(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.put("sig", {0: array("q")})
        assert {p: list(s) for p, s in cache.get("sig").items()} == {0: []}

    def test_default_directory_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
        cache = default_trace_cache()
        assert cache.directory == tmp_path / "traces"
        assert cache.directory.is_dir()


class TestSignatures:
    def test_signature_covers_parameters_and_layout(self):
        config = p1_config()
        a = BarnesHut(n_bodies=32, steps=1).trace_signature(config)
        b = BarnesHut(n_bodies=64, steps=1).trace_signature(config)
        assert a is not None and b is not None and a != b
        wider = SystemConfig(clusters=1, processors_per_cluster=2)
        c = BarnesHut(n_bodies=32, steps=1).trace_signature(wider)
        assert c != a

    def test_default_repr_refuses_to_sign(self):
        class Anonymous(TracedApplication):
            def processes(self, config):   # pragma: no cover
                return {}

        assert Anonymous().trace_signature(p1_config()) is None
