"""Tests for the fused multi-configuration replay engine.

The engine's contract is *bit-identical* statistics to one
:class:`~repro.trace.record.ReplayApplication` run per configuration, so
every equivalence test here compares full ``SystemStats.as_dict()``
payloads (every SCC counter, every processor counter, the icache), not
just a summary fingerprint.
"""

from array import array

import pytest

from repro.core.config import SystemConfig
from repro.simulation import run_simulation
from repro.trace.interleave import (DeadlockError, SyncProtocolError,
                                    fused_replay_ok)
from repro.trace.multiconfig import (MissSurfacePoint, fused_ladder_results,
                                     fused_ladder_supported,
                                     per_process_miss_surface)
from repro.trace.packed import (OP_BARRIER, OP_COMPUTE, OP_DEQUEUE,
                                OP_ENQUEUE, OP_IFETCH, OP_LOCK_ACQ,
                                OP_LOCK_REL, OP_READ, OP_READ_SPAN,
                                OP_WRITE, OP_WRITE_SPAN)
from repro.trace.record import ReplayApplication, StreamRecorder
from repro.workloads.multiprog import MultiprogrammingWorkload

SIZES = (512, 1024, 2048, 4096)


def uni_config(scc_size=2048, **extra):
    kwargs = dict(clusters=1, processors_per_cluster=1, scc_size=scc_size)
    kwargs.update(extra)
    return SystemConfig(**kwargs)


def ladder(**extra):
    return [uni_config(size, **extra) for size in SIZES]


def record_multiprog(config):
    recorder = StreamRecorder(MultiprogrammingWorkload(
        instructions_per_app=4000, quantum_instructions=1500, scale=8))
    run_simulation(config, recorder)
    assert recorder.streams is not None
    return recorder.streams


def synthetic_tape():
    """Every opcode the engine handles, including live write windows."""
    data = array("q")
    data.extend([OP_LOCK_ACQ, 7])
    for rep in range(60):
        data.extend([OP_READ_SPAN, rep * 64, 1024, 16])
        data.extend([OP_WRITE, (rep * 136) % 4096])
        data.extend([OP_WRITE_SPAN, rep * 32, 512, 32])
        data.extend([OP_COMPUTE, 3])
        data.extend([OP_IFETCH, rep * 128 % 2048, 6])
        data.extend([OP_ENQUEUE, 5, rep])
        data.extend([OP_DEQUEUE, 5])
        data.extend([OP_READ, (rep * 264) % 8192])
        data.extend([OP_BARRIER, 1, 1])
    data.extend([OP_LOCK_REL, 7])
    return {0: data}


def assert_bit_identical(configs, streams):
    results = fused_ladder_results(configs, streams)
    for config, fused in zip(configs, results):
        replay = ReplayApplication(streams, name="test")
        per_size = run_simulation(config, replay)
        assert fused.stats.as_dict() == per_size.stats.as_dict(), (
            f"stats diverge at scc_size={config.scc_size}")
        assert fused.events_processed == per_size.events_processed
        assert fused.config == config


# ----------------------------------------------------------------------
# Applicability gate
# ----------------------------------------------------------------------

class TestGate:
    def test_accepts_uniprocessor_ladder(self):
        assert fused_ladder_supported(ladder())

    def test_accepts_mesi_and_icache_variants(self):
        assert fused_ladder_supported(ladder(protocol="mesi"))
        assert fused_ladder_supported(
            ladder(model_icache=True, icache_size=2048))

    def test_rejects_single_config(self):
        assert not fused_ladder_supported([uni_config()])

    def test_rejects_duplicate_sizes(self):
        assert not fused_ladder_supported(
            [uni_config(2048), uni_config(2048)])

    def test_rejects_multiprocessor(self):
        configs = [SystemConfig(clusters=4, processors_per_cluster=2,
                                scc_size=size) for size in SIZES]
        assert not fused_ladder_supported(configs)

    @pytest.mark.parametrize("extra", [
        dict(associativity=2),
        dict(cluster_organization="private"),
        dict(inter_cluster="directory"),
        dict(stall_on_writes=True),
        dict(bank_cycle_time=2),
    ])
    def test_rejects_unsupported_machines(self, extra):
        assert not fused_ladder_supported(ladder(**extra))
        assert not fused_replay_ok(uni_config(**extra))

    def test_rejects_mixed_ladders(self):
        mixed = ladder()
        mixed[1] = uni_config(1024, protocol="mesi")
        assert not fused_ladder_supported(mixed)

    def test_engine_refuses_ungated_ladder(self):
        with pytest.raises(ValueError, match="fused"):
            fused_ladder_results([uni_config()], {0: array("q")})

    def test_engine_refuses_multiprocess_streams(self):
        streams = {0: array("q"), 1: array("q")}
        with pytest.raises(ValueError, match="processes"):
            fused_ladder_results(ladder(), streams)


# ----------------------------------------------------------------------
# Bit-exact equivalence with per-size replay
# ----------------------------------------------------------------------

class TestEquivalence:
    def test_multiprogramming_msi(self):
        configs = [uni_config(size, model_icache=True, icache_size=2048)
                   for size in SIZES]
        assert_bit_identical(configs, record_multiprog(configs[0]))

    def test_multiprogramming_mesi(self):
        configs = [uni_config(size, model_icache=True, icache_size=2048,
                              protocol="mesi") for size in SIZES]
        assert_bit_identical(configs, record_multiprog(configs[0]))

    def test_multiprogramming_line32(self):
        configs = [uni_config(size, model_icache=True, icache_size=2048,
                              line_size=32) for size in SIZES]
        assert_bit_identical(configs, record_multiprog(configs[0]))

    def test_synthetic_all_opcodes_no_icache(self):
        assert_bit_identical(ladder(), synthetic_tape())

    def test_synthetic_all_opcodes_with_icache(self):
        configs = ladder(model_icache=True, icache_size=1024)
        assert_bit_identical(configs, synthetic_tape())

    def test_input_order_preserved(self):
        streams = synthetic_tape()
        configs = ladder()
        shuffled = [configs[2], configs[0], configs[3], configs[1]]
        results = fused_ladder_results(shuffled, streams)
        assert [r.config.scc_size for r in results] == [
            c.scc_size for c in shuffled]

    def test_empty_stream(self):
        results = fused_ladder_results(ladder(), {0: array("q")})
        for result in results:
            assert result.stats.execution_time == 0
            assert result.events_processed == 0


# ----------------------------------------------------------------------
# Error-path parity
# ----------------------------------------------------------------------

class TestErrors:
    def test_barrier_needing_peers_deadlocks(self):
        with pytest.raises(DeadlockError):
            fused_ladder_results(ladder(),
                                 {0: array("q", [OP_BARRIER, 1, 2])})

    def test_barrier_count_zero_is_protocol_error(self):
        with pytest.raises(SyncProtocolError):
            fused_ladder_results(ladder(),
                                 {0: array("q", [OP_BARRIER, 1, 0])})

    def test_release_unheld_lock_is_protocol_error(self):
        with pytest.raises(SyncProtocolError):
            fused_ladder_results(ladder(),
                                 {0: array("q", [OP_LOCK_REL, 3])})

    def test_reacquiring_held_lock_deadlocks(self):
        tape = array("q", [OP_LOCK_ACQ, 1, OP_LOCK_ACQ, 1])
        with pytest.raises(DeadlockError):
            fused_ladder_results(ladder(), {0: tape})

    def test_unknown_opcode(self):
        with pytest.raises(ValueError, match="opcode"):
            fused_ladder_results(ladder(), {0: array("q", [99, 0])})


# ----------------------------------------------------------------------
# Compiled ladder error parity
# ----------------------------------------------------------------------

def _native_ladder_ready():
    from repro.trace.engine import native_available
    if not native_available():
        return False
    from repro.trace.engine.native import ladder_available
    return ladder_available()


@pytest.mark.skipif(not _native_ladder_ready(),
                    reason="native ladder unavailable")
class TestNativeLadderErrorParity:
    """The C ladder must fail exactly like the python ladder -- same
    exception type, raised before any partial results escape."""

    def both(self, streams):
        outcomes = {}
        for backend in ("python", "native"):
            try:
                fused_ladder_results(ladder(), streams, backend=backend)
            except Exception as exc:
                outcomes[backend] = (type(exc), str(exc))
            else:
                outcomes[backend] = None
        return outcomes

    @pytest.mark.parametrize("tape, exc_type", [
        ([OP_BARRIER, 1, 2], DeadlockError),
        ([OP_BARRIER, 1, 0], SyncProtocolError),
        ([OP_LOCK_REL, 3], SyncProtocolError),
        ([OP_LOCK_ACQ, 1, OP_LOCK_ACQ, 1], DeadlockError),
        ([99, 0], ValueError),
    ])
    def test_error_tapes_agree(self, tape, exc_type):
        outcomes = self.both({0: array("q", tape)})
        assert outcomes["python"] is not None
        assert outcomes["native"] is not None
        assert outcomes["native"][0] is outcomes["python"][0] is exc_type

    def test_error_after_real_work_agrees(self):
        """A mid-tape failure after thousands of good events must not
        leak partial per-rung results from the C pass."""
        tape = array("q", synthetic_tape()[0])
        tape.extend([OP_LOCK_REL, 3])
        outcomes = self.both({0: tape})
        assert outcomes["python"] is not None
        assert outcomes["native"][0] is outcomes["python"][0]

    def test_synthetic_tape_bit_identical_on_native(self):
        from repro.trace import multiconfig
        streams = synthetic_tape()
        python = fused_ladder_results(ladder(), streams,
                                      backend="python")
        native = fused_ladder_results(ladder(), streams,
                                      backend="native")
        assert multiconfig.LAST_LADDER_ENGINE == "native"
        for py_r, nat_r in zip(python, native):
            assert nat_r.stats.as_dict() == py_r.stats.as_dict()
            assert nat_r.events_processed == py_r.events_processed


# ----------------------------------------------------------------------
# Miss-surface mode (parallel workloads)
# ----------------------------------------------------------------------

class TestMissSurface:
    def make_streams(self):
        return {
            0: array("q", [OP_READ, 0, OP_READ, 1024, OP_READ, 0,
                           OP_WRITE, 64, OP_COMPUTE, 5]),
            1: array("q", [OP_READ_SPAN, 0, 256, 16,
                           OP_WRITE_SPAN, 0, 256, 16]),
        }

    def test_counts_and_inclusion(self):
        config = uni_config(512)
        surface = per_process_miss_surface(config, SIZES,
                                           self.make_streams())
        assert set(surface) == {0, 1}
        point = surface[0][512]
        assert point.reads == 3 and point.writes == 1
        # Addresses 0 and 1024 share a set below 2 KB (their line numbers
        # 0 and 64 mask to the same index): read 0 misses, 1024 misses
        # and evicts it, 0 misses again.
        assert point.read_misses == 3
        # At 2 KB (128 lines) they coexist: two cold read misses only.
        assert surface[0][2048].read_misses == 2
        # Monotone non-increasing misses up the ladder (inclusion).
        for proc in surface:
            rates = [surface[proc][size].read_misses
                     + surface[proc][size].write_misses
                     for size in SIZES]
            assert rates == sorted(rates, reverse=True)

    def test_span_writes_hit_after_reads(self):
        surface = per_process_miss_surface(uni_config(512), [512],
                                           self.make_streams())
        point = surface[1][512]
        # The write span re-touches the lines the read span installed.
        assert point.reads == 16 and point.writes == 16
        assert point.read_misses == 16 and point.write_misses == 0
        assert point.miss_rate == pytest.approx(0.5)

    def test_point_math(self):
        point = MissSurfacePoint(reads=0, writes=0, read_misses=0,
                                 write_misses=0)
        assert point.miss_rate == 0.0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            per_process_miss_surface(uni_config(), [768],
                                     self.make_streams())
        with pytest.raises(ValueError):
            per_process_miss_surface(uni_config(), [],
                                     self.make_streams())
