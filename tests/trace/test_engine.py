"""Unit tests for the replay-engine registry and the batch decoder.

The cross-backend *timing* equivalence lives in ``tests/equivalence``
and the fuzz corpus; this module covers the selection machinery
(:mod:`repro.trace.engine`) and the vectorized chunk decoder
(:mod:`repro.trace.engine.flatten`) -- the two pieces with behavior of
their own beyond "same numbers as the python loop".
"""

import random
from array import array

import pytest

import repro.trace.engine.flatten as flatten
from repro.trace.engine import (BACKEND_CHOICES, available_backends,
                                backend_info, native_available,
                                numpy_available, resolve_backend)
from repro.trace.engine.flatten import decode_chunk
from repro.trace.packed import (OP_BARRIER, OP_COMPUTE, OP_DEQUEUE,
                                OP_ENQUEUE, OP_IFETCH, OP_LOCK_ACQ,
                                OP_LOCK_REL, OP_READ, OP_READ_SPAN,
                                OP_WRITE, OP_WRITE_SPAN)

GEOM = dict(line_shift=5, idx_mask=0x3F, tag_shift=6, nbanks=4,
            icache_mode=1, iline_shift=5)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------

class TestResolveBackend:
    def test_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown replay backend"):
            resolve_backend("fortran")

    def test_env_var_is_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "python")
        assert resolve_backend() == "python"
        monkeypatch.setenv("REPRO_ENGINE", "bogus")
        with pytest.raises(ValueError):
            resolve_backend()

    def test_explicit_request_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "bogus")
        assert resolve_backend("python") == "python"

    def test_auto_resolves_to_an_available_backend(self):
        assert resolve_backend("auto") in available_backends()

    def test_requests_degrade_down_the_ladder(self, monkeypatch):
        import repro.trace.engine as engine
        monkeypatch.setattr(engine, "native_available", lambda: False)
        monkeypatch.setattr(engine, "numpy_available", lambda: False)
        assert engine.resolve_backend("native") == "python"
        assert engine.resolve_backend("numpy") == "python"
        with pytest.raises(RuntimeError):
            engine.resolve_backend("numpy", strict=True)

    def test_python_is_always_available(self):
        assert "python" in available_backends()
        assert set(available_backends()) <= set(BACKEND_CHOICES)

    def test_backend_info_shape(self):
        info = backend_info()
        assert info["resolved"] in info["available"]
        if numpy_available():
            assert "numpy_version" in info
        if native_available():
            assert "native_version" in info
        else:
            assert info["native_error"]


def test_differ_registry_covers_available_backends():
    from repro.verify.differ import engine_registry
    registry = engine_registry()
    assert {"oracle", "fast", "fused"} <= set(registry)
    for name in available_backends():
        if name != "python":
            assert name in registry, (
                f"backend {name} is importable but never diffed")


# ----------------------------------------------------------------------
# Batch decoder
# ----------------------------------------------------------------------

def random_stream(rng, n_ops, valid=True):
    """A syntactically valid packed stream with every opcode family."""
    buf = array("q")
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.45:
            buf.extend((rng.choice((OP_READ, OP_WRITE)),
                        rng.randrange(1 << 20)))
        elif roll < 0.55:
            buf.extend((OP_COMPUTE, rng.randrange(50)))
        elif roll < 0.70:
            buf.extend((OP_IFETCH, rng.randrange(1 << 16),
                        rng.randrange(1, 16)))
        elif roll < 0.80:
            buf.extend((rng.choice((OP_READ_SPAN, OP_WRITE_SPAN)),
                        rng.randrange(1 << 16),
                        rng.randrange(0, 400),
                        rng.randrange(1, 64)))
        elif roll < 0.90:
            buf.extend((rng.choice((OP_LOCK_ACQ, OP_LOCK_REL,
                                    OP_DEQUEUE)),
                        rng.randrange(8)))
        elif roll < 0.95:
            buf.extend((OP_BARRIER, rng.randrange(4), rng.randrange(1, 5)))
        else:
            buf.extend((OP_ENQUEUE, rng.randrange(4), rng.randrange(100)))
    return buf


def columns(dec):
    return (dec.n, dec.kind, dec.a, dec.b, dec.after_i, dec.after_sub,
            dec.bad_pos)


def scalar_reference(data):
    """Decode through the scalar fallback path regardless of size."""
    out = flatten.DecodedChunk()
    flatten._scalar_columns(out, list(data))
    out.n = len(out.kind)
    return out


@pytest.mark.parametrize("seed", range(8))
def test_vector_decode_matches_scalar(seed):
    rng = random.Random(seed)
    data = random_stream(rng, 400)
    assert len(data) >= flatten._VECTOR_MIN_INTS
    dec = decode_chunk(data, **GEOM)
    ref = scalar_reference(data)
    assert columns(dec)[:-1] == (ref.n, ref.kind, ref.a, ref.b,
                                 ref.after_i, ref.after_sub)
    assert dec.bad_pos is None


def test_unknown_opcode_sets_bad_pos():
    data = array("q", [OP_READ, 32, 99, 7, OP_READ, 64])
    data.extend([OP_COMPUTE, 1] * 200)     # force the vector decoder
    dec = decode_chunk(data, **GEOM)
    assert dec.bad_pos == 2
    assert dec.n == 1                      # only the event before it
    assert columns(dec) == columns(scalar_reference(data))


def test_bad_span_stride_sets_bad_pos():
    data = array("q", [OP_READ, 32, OP_READ_SPAN, 0, 64, 0])
    data.extend([OP_COMPUTE, 1] * 200)
    dec = decode_chunk(data, **GEOM)
    assert dec.bad_pos == 2
    assert columns(dec) == columns(scalar_reference(data))


def test_truncated_stream_raises_index_error():
    data = array("q", [OP_COMPUTE, 1] * 200 + [OP_IFETCH, 4])
    with pytest.raises(IndexError):
        decode_chunk(data, **GEOM)
    with pytest.raises(IndexError):
        scalar_reference(data)


def test_span_expansion_and_resume_positions():
    data = array("q", [OP_READ_SPAN, 100, 10, 4])
    data.extend([OP_COMPUTE, 1] * 200)
    dec = decode_chunk(data, **GEOM)
    assert dec.a[:3] == [100, 104, 108]
    assert dec.kind[:3] == [OP_READ] * 3
    # Mid-span resume positions point back into the span opcode.
    assert dec.after_i[:3] == [0, 0, 4]
    assert dec.after_sub[:3] == [4, 8, 0]
    assert dec.cursor_for(0, 4) == 1
    assert dec.cursor_for(0, 8) == 2
    assert dec.cursor_for(4, 0) == 3


# ----------------------------------------------------------------------
# Multi-processor vector windows (numpy backend)
# ----------------------------------------------------------------------

def _mp_run(streams, backend, procs_per_cluster=None, clusters=1,
            max_cycles=10_000_000):
    """Replay ``streams`` on a multi-processor machine through one
    backend; returns ``(outcome, events, stats)`` where ``outcome`` is
    the finish time or the raised ``(type name, message)``."""
    from repro.core.config import SystemConfig
    from repro.core.system import MultiprocessorSystem
    from repro.trace.interleave import TimingInterleaver
    from repro.trace.packed import PackedChunk
    if procs_per_cluster is None:
        procs_per_cluster = len(streams) // clusters
    config = SystemConfig(clusters=clusters,
                          processors_per_cluster=procs_per_cluster,
                          scc_size=2048)
    system = MultiprocessorSystem(config)
    interleaver = TimingInterleaver(system, backend=backend)
    for pid, data in sorted(streams.items()):
        interleaver.add_process(pid,
                                iter([PackedChunk(array("q", data))]))
    try:
        finish = interleaver.run(max_cycles=max_cycles)
    except Exception as exc:
        return ((type(exc).__name__, str(exc)),
                interleaver.events_processed, None)
    return (finish, interleaver.events_processed,
            system.stats(finish).as_dict())


@pytest.mark.skipif(not numpy_available(), reason="numpy unavailable")
class TestMultiProcessorWindows:
    """Scalar parity for the shapes PR 7 delegated at entry: the numpy
    tier now replays multi-processor unit-bank-cycle tapes itself,
    vector windows bounded by the scheduler horizon."""

    def drifting_streams(self):
        """Proc 1 computes in large steps, giving proc 0 real horizon
        headroom; proc 0 replays spans long enough that windows
        truncate *mid-span* (the resume-position boundary the PR 7
        bad-span-stride bug lived on)."""
        warm = array("q")
        for line_no in range(32):
            warm.extend((OP_READ, line_no * 64))
        spans = array("q", warm)
        for _ in range(120):
            spans.extend((OP_READ_SPAN, 0, 2048, 64))
            spans.extend((OP_WRITE_SPAN, 0, 2048, 64))
        pacer = array("q")
        for _ in range(400):
            pacer.extend((OP_COMPUTE, 37))
        return {0: spans, 1: pacer}

    def test_windows_engage_and_match_python_loop(self):
        import repro.trace.engine.numpy_backend as nb
        streams = self.drifting_streams()
        reference = _mp_run(streams, "python")
        nb.DEBUG = {}
        try:
            vectorized = _mp_run(streams, "numpy")
            debug = dict(nb.DEBUG)
        finally:
            nb.DEBUG = None
        assert vectorized == reference
        # The parity above must actually exercise the window path --
        # a silent fall-back to scalar would make it vacuous.
        assert debug.get("vec_events", 0) > 0

    def test_two_cluster_drift_matches_python_loop(self):
        streams = self.drifting_streams()
        assert (_mp_run(streams, "numpy", clusters=2,
                        procs_per_cluster=1)
                == _mp_run(streams, "python", clusters=2,
                           procs_per_cluster=1))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_multiproc_tapes_match(self, seed):
        rng = random.Random(seed)
        streams = {0: random_stream(rng, 300),
                   1: random_stream(rng, 300)}
        assert _mp_run(streams, "numpy") == _mp_run(streams, "python")

    def test_bad_span_stride_raises_proactively(self):
        """The python loop spins to ``max_cycles`` on a non-positive
        span stride (documented in ``flatten.py``); the decoded tiers
        must convert the spin into a loud ValueError even when the bad
        span sits mid-tape on one processor of a multi-proc machine."""
        streams = self.drifting_streams()
        bad = array("q", streams[0])
        bad.extend((OP_READ_SPAN, 0, 64, -4))
        bad.extend([OP_COMPUTE, 1] * 8)
        streams = {0: bad, 1: streams[1]}
        outcome, _, stats = _mp_run(streams, "numpy")
        assert stats is None
        assert outcome[0] == "ValueError"
        assert "non-positive span stride" in outcome[1]
        spin, _, _ = _mp_run(streams, "python", max_cycles=200_000)
        assert spin[0] == "RuntimeError"
        assert "exceeded 200000 cycles" in spin[1]

    def test_unknown_opcode_error_parity(self):
        streams = self.drifting_streams()
        bad = array("q", streams[0])
        bad.extend((99, 0))
        streams = {0: bad, 1: streams[1]}
        outcome, _, stats = _mp_run(streams, "numpy")
        assert stats is None
        assert outcome == _mp_run(streams, "python")[0]
        assert outcome[0] == "ValueError"

    def test_lockstep_bailout_matches_python_loop(self, monkeypatch):
        """Tied processors never open windows; the backend hands the
        remainder to the python loop mid-run.  Force the bail-out early
        and pin that the hand-off is seamless."""
        import repro.trace.engine.numpy_backend as nb
        monkeypatch.setattr(nb, "_BAIL_EVENTS", 64)
        lockstep = array("q")
        for line_no in range(2000):
            lockstep.extend((OP_READ, (line_no % 32) * 64))
        streams = {0: lockstep, 1: array("q", lockstep)}
        nb.DEBUG = {}
        try:
            vectorized = _mp_run(streams, "numpy")
            debug = dict(nb.DEBUG)
        finally:
            nb.DEBUG = None
        assert vectorized == _mp_run(streams, "python")
        assert debug.get("bailed")


class TestDecodeCache:
    def test_same_array_same_geometry_hits(self):
        data = random_stream(random.Random(1), 400)
        first = decode_chunk(data, **GEOM)
        assert decode_chunk(data, **GEOM) is first

    def test_geometry_change_recomputes(self):
        data = random_stream(random.Random(2), 400)
        first = decode_chunk(data, **GEOM)
        other = decode_chunk(data, **{**GEOM, "idx_mask": 0x1F})
        assert other is not first

    def test_lists_are_not_cached(self):
        data = list(random_stream(random.Random(3), 400))
        assert decode_chunk(data, **GEOM) is not decode_chunk(data, **GEOM)

    def test_entries_die_with_their_stream(self):
        data = random_stream(random.Random(4), 400)
        decode_chunk(data, **GEOM)
        key = id(data)
        assert key in flatten._DECODE_CACHE
        del data
        assert key not in flatten._DECODE_CACHE
