"""Unit tests for the replay-engine registry and the batch decoder.

The cross-backend *timing* equivalence lives in ``tests/equivalence``
and the fuzz corpus; this module covers the selection machinery
(:mod:`repro.trace.engine`) and the vectorized chunk decoder
(:mod:`repro.trace.engine.flatten`) -- the two pieces with behavior of
their own beyond "same numbers as the python loop".
"""

import random
from array import array

import pytest

import repro.trace.engine.flatten as flatten
from repro.trace.engine import (BACKEND_CHOICES, available_backends,
                                backend_info, native_available,
                                numpy_available, resolve_backend)
from repro.trace.engine.flatten import decode_chunk
from repro.trace.packed import (OP_BARRIER, OP_COMPUTE, OP_DEQUEUE,
                                OP_ENQUEUE, OP_IFETCH, OP_LOCK_ACQ,
                                OP_LOCK_REL, OP_READ, OP_READ_SPAN,
                                OP_WRITE, OP_WRITE_SPAN)

GEOM = dict(line_shift=5, idx_mask=0x3F, tag_shift=6, nbanks=4,
            icache_mode=1, iline_shift=5)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------

class TestResolveBackend:
    def test_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown replay backend"):
            resolve_backend("fortran")

    def test_env_var_is_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "python")
        assert resolve_backend() == "python"
        monkeypatch.setenv("REPRO_ENGINE", "bogus")
        with pytest.raises(ValueError):
            resolve_backend()

    def test_explicit_request_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "bogus")
        assert resolve_backend("python") == "python"

    def test_auto_resolves_to_an_available_backend(self):
        assert resolve_backend("auto") in available_backends()

    def test_requests_degrade_down_the_ladder(self, monkeypatch):
        import repro.trace.engine as engine
        monkeypatch.setattr(engine, "native_available", lambda: False)
        monkeypatch.setattr(engine, "numpy_available", lambda: False)
        assert engine.resolve_backend("native") == "python"
        assert engine.resolve_backend("numpy") == "python"
        with pytest.raises(RuntimeError):
            engine.resolve_backend("numpy", strict=True)

    def test_python_is_always_available(self):
        assert "python" in available_backends()
        assert set(available_backends()) <= set(BACKEND_CHOICES)

    def test_backend_info_shape(self):
        info = backend_info()
        assert info["resolved"] in info["available"]
        if numpy_available():
            assert "numpy_version" in info
        if native_available():
            assert "native_version" in info
        else:
            assert info["native_error"]


def test_differ_registry_covers_available_backends():
    from repro.verify.differ import engine_registry
    registry = engine_registry()
    assert {"oracle", "fast", "fused"} <= set(registry)
    for name in available_backends():
        if name != "python":
            assert name in registry, (
                f"backend {name} is importable but never diffed")


# ----------------------------------------------------------------------
# Batch decoder
# ----------------------------------------------------------------------

def random_stream(rng, n_ops, valid=True):
    """A syntactically valid packed stream with every opcode family."""
    buf = array("q")
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.45:
            buf.extend((rng.choice((OP_READ, OP_WRITE)),
                        rng.randrange(1 << 20)))
        elif roll < 0.55:
            buf.extend((OP_COMPUTE, rng.randrange(50)))
        elif roll < 0.70:
            buf.extend((OP_IFETCH, rng.randrange(1 << 16),
                        rng.randrange(1, 16)))
        elif roll < 0.80:
            buf.extend((rng.choice((OP_READ_SPAN, OP_WRITE_SPAN)),
                        rng.randrange(1 << 16),
                        rng.randrange(0, 400),
                        rng.randrange(1, 64)))
        elif roll < 0.90:
            buf.extend((rng.choice((OP_LOCK_ACQ, OP_LOCK_REL,
                                    OP_DEQUEUE)),
                        rng.randrange(8)))
        elif roll < 0.95:
            buf.extend((OP_BARRIER, rng.randrange(4), rng.randrange(1, 5)))
        else:
            buf.extend((OP_ENQUEUE, rng.randrange(4), rng.randrange(100)))
    return buf


def columns(dec):
    return (dec.n, dec.kind, dec.a, dec.b, dec.after_i, dec.after_sub,
            dec.bad_pos)


def scalar_reference(data):
    """Decode through the scalar fallback path regardless of size."""
    out = flatten.DecodedChunk()
    flatten._scalar_columns(out, list(data))
    out.n = len(out.kind)
    return out


@pytest.mark.parametrize("seed", range(8))
def test_vector_decode_matches_scalar(seed):
    rng = random.Random(seed)
    data = random_stream(rng, 400)
    assert len(data) >= flatten._VECTOR_MIN_INTS
    dec = decode_chunk(data, **GEOM)
    ref = scalar_reference(data)
    assert columns(dec)[:-1] == (ref.n, ref.kind, ref.a, ref.b,
                                 ref.after_i, ref.after_sub)
    assert dec.bad_pos is None


def test_unknown_opcode_sets_bad_pos():
    data = array("q", [OP_READ, 32, 99, 7, OP_READ, 64])
    data.extend([OP_COMPUTE, 1] * 200)     # force the vector decoder
    dec = decode_chunk(data, **GEOM)
    assert dec.bad_pos == 2
    assert dec.n == 1                      # only the event before it
    assert columns(dec) == columns(scalar_reference(data))


def test_bad_span_stride_sets_bad_pos():
    data = array("q", [OP_READ, 32, OP_READ_SPAN, 0, 64, 0])
    data.extend([OP_COMPUTE, 1] * 200)
    dec = decode_chunk(data, **GEOM)
    assert dec.bad_pos == 2
    assert columns(dec) == columns(scalar_reference(data))


def test_truncated_stream_raises_index_error():
    data = array("q", [OP_COMPUTE, 1] * 200 + [OP_IFETCH, 4])
    with pytest.raises(IndexError):
        decode_chunk(data, **GEOM)
    with pytest.raises(IndexError):
        scalar_reference(data)


def test_span_expansion_and_resume_positions():
    data = array("q", [OP_READ_SPAN, 100, 10, 4])
    data.extend([OP_COMPUTE, 1] * 200)
    dec = decode_chunk(data, **GEOM)
    assert dec.a[:3] == [100, 104, 108]
    assert dec.kind[:3] == [OP_READ] * 3
    # Mid-span resume positions point back into the span opcode.
    assert dec.after_i[:3] == [0, 0, 4]
    assert dec.after_sub[:3] == [4, 8, 0]
    assert dec.cursor_for(0, 4) == 1
    assert dec.cursor_for(0, 8) == 2
    assert dec.cursor_for(4, 0) == 3


class TestDecodeCache:
    def test_same_array_same_geometry_hits(self):
        data = random_stream(random.Random(1), 400)
        first = decode_chunk(data, **GEOM)
        assert decode_chunk(data, **GEOM) is first

    def test_geometry_change_recomputes(self):
        data = random_stream(random.Random(2), 400)
        first = decode_chunk(data, **GEOM)
        other = decode_chunk(data, **{**GEOM, "idx_mask": 0x1F})
        assert other is not first

    def test_lists_are_not_cached(self):
        data = list(random_stream(random.Random(3), 400))
        assert decode_chunk(data, **GEOM) is not decode_chunk(data, **GEOM)

    def test_entries_die_with_their_stream(self):
        data = random_stream(random.Random(4), 400)
        decode_chunk(data, **GEOM)
        key = id(data)
        assert key in flatten._DECODE_CACHE
        del data
        assert key not in flatten._DECODE_CACHE
