"""Tests for the happens-before race detector."""

import pytest

from repro.core.config import KB, SystemConfig
from repro.core.system import MultiprocessorSystem
from repro.trace.events import (Barrier, Compute, LockAcquire, LockRelease,
                                Read, TaskDequeue, TaskEnqueue, Write)
from repro.trace.interleave import TimingInterleaver
from repro.trace.racecheck import RaceDetector


def run_with_detector(streams, procs=2):
    config = SystemConfig(clusters=1, processors_per_cluster=procs,
                          scc_size=4 * KB)
    detector = RaceDetector()
    system = MultiprocessorSystem(config)
    interleaver = TimingInterleaver(system, observer=detector)
    for pid, events in enumerate(streams):
        interleaver.add_process(pid, iter(events))
    interleaver.run()
    return detector


class TestSyntheticScenarios:
    def test_unsynchronized_write_write_is_a_race(self):
        detector = run_with_detector([[Write(0x100)], [Write(0x100)]])
        assert detector.races
        assert detector.races[0].kind == "write-write"

    def test_unsynchronized_read_write_is_a_race(self):
        detector = run_with_detector(
            [[Read(0x100)], [Compute(50), Write(0x100)]])
        assert any(r.kind == "read-write" for r in detector.races)

    def test_concurrent_reads_are_fine(self):
        detector = run_with_detector([[Read(0x100)], [Read(0x100)]])
        assert not detector.races

    def test_disjoint_lines_are_fine(self):
        detector = run_with_detector([[Write(0x100)], [Write(0x200)]])
        assert not detector.races

    def test_same_line_different_words_still_races(self):
        """Line granularity on purpose: unsynchronized false sharing
        also makes timing scheduling-dependent."""
        detector = run_with_detector([[Write(0x100)], [Write(0x108)]])
        assert detector.races

    def test_lock_orders_the_accesses(self):
        def critical():
            return [LockAcquire(1), Write(0x100), LockRelease(1)]
        detector = run_with_detector([critical(), critical()])
        assert not detector.races

    def test_lock_on_a_different_lock_does_not_order(self):
        detector = run_with_detector(
            [[LockAcquire(1), Write(0x100), LockRelease(1)],
             [LockAcquire(2), Write(0x100), LockRelease(2)]])
        assert detector.races

    def test_barrier_orders_phases(self):
        detector = run_with_detector(
            [[Write(0x100), Barrier(0, 2)],
             [Barrier(0, 2), Read(0x100), Write(0x100)]])
        assert not detector.races

    def test_queue_handoff_orders_producer_and_consumer(self):
        producer = [Write(0x100), TaskEnqueue(0, 1)]

        def consumer():
            item = None
            while item is None:
                yield Compute(10)
                item = yield TaskDequeue(0)
            yield Read(0x100)

        detector = run_with_detector([producer, consumer()])
        assert not detector.races

    def test_race_report_is_printable(self):
        detector = run_with_detector([[Write(0x100)], [Write(0x100)]])
        text = str(detector.races[0])
        assert "race" in text and "0x10" in text

    def test_max_races_caps_reports(self):
        streams = [[Write(line * 16) for line in range(100)],
                   [Write(line * 16) for line in range(100)]]
        detector = run_with_detector(streams)
        assert len(detector.races) <= detector.max_races

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            RaceDetector(line_size=24)


class TestBarrierSymmetry:
    """Regression: barrier release must join the merged arrival clocks
    into *every* participant, so pre-barrier work is ordered before
    post-barrier work in both directions, not just one."""

    def test_barrier_orders_both_directions(self):
        detector = run_with_detector(
            [[Write(0x100), Barrier(0, 2), Write(0x200)],
             [Write(0x200), Barrier(0, 2), Write(0x100)]])
        assert not detector.races

    def test_release_joins_every_arrival_directly(self):
        detector = RaceDetector(16)
        detector.on_access(0, 0x100, True)
        detector.on_access(1, 0x200, True)
        detector.on_access(2, 0x300, True)
        for proc in (0, 1, 2):
            detector.on_barrier_arrive(proc, 5)
        detector.on_barrier_release(5)
        # Every participant may now touch every other's pre-barrier line.
        detector.on_access(1, 0x100, True)
        detector.on_access(2, 0x200, True)
        detector.on_access(0, 0x300, True)
        assert not detector.races

    def test_barrier_does_not_order_non_participants(self):
        detector = RaceDetector(16)
        detector.on_access(0, 0x100, True)
        detector.on_barrier_arrive(0, 2)
        detector.on_barrier_arrive(1, 2)
        detector.on_barrier_release(2)
        detector.on_access(3, 0x100, True)  # proc 3 never arrived
        assert detector.races

    def test_successive_episodes_reuse_a_barrier_id(self):
        detector = run_with_detector(
            [[Write(0x100), Barrier(0, 2), Barrier(0, 2), Read(0x200)],
             [Write(0x200), Barrier(0, 2), Barrier(0, 2), Read(0x100)]])
        assert not detector.races


class TestWorkloadCharacterization:
    """The detector documents the workloads' synchronization structure:
    Cholesky is fully ordered; Barnes-Hut and MP3D contain the same
    *intentional* races their SPLASH originals have (optimistic tree
    descent, unsynchronized cell accumulators)."""

    def _detect(self, app, config):
        detector = RaceDetector()
        system = MultiprocessorSystem(config)
        interleaver = TimingInterleaver(system, observer=detector)
        for pid, gen in app.processes(config).items():
            interleaver.add_process(pid, gen)
        interleaver.run()
        return detector

    def test_cholesky_is_race_free(self):
        from repro.workloads import Cholesky
        detector = self._detect(Cholesky(n=96),
                                SystemConfig.paper_parallel(2, 4 * KB))
        assert not detector.races

    def test_barnes_races_only_on_cell_records(self):
        """The optimistic insert descent reads child slots unlocked (as
        SPLASH does); body records must be fully synchronized."""
        from repro.workloads.barnes_hut import BarnesHut, _BarnesHutRun
        app = BarnesHut(n_bodies=64, steps=1)
        config = SystemConfig.paper_parallel(2, 4 * KB)
        run = _BarnesHutRun(app, config)
        detector = RaceDetector()
        system = MultiprocessorSystem(config)
        interleaver = TimingInterleaver(system, observer=detector)
        for pid in range(config.total_processors):
            interleaver.add_process(pid, run.process(pid))
        interleaver.run()
        for race in detector.races:
            addr = race.line * 16
            assert run.cell_region.contains(addr), \
                f"unexpected race outside the cell pool: {race}"

    def test_mp3d_races_only_on_shared_cells_and_particles(self):
        """MP3D's cell accumulators and collision partners are updated
        without locks, as in the original benchmark; the global counters
        (lock-protected) must stay clean."""
        from repro.workloads.mp3d import MP3D, _MP3DRun
        app = MP3D(n_particles=150, steps=2)
        config = SystemConfig.paper_parallel(2, 4 * KB)
        run = _MP3DRun(app, config)
        detector = RaceDetector()
        system = MultiprocessorSystem(config)
        interleaver = TimingInterleaver(system, observer=detector)
        for pid in range(config.total_processors):
            interleaver.add_process(pid, run.process(pid))
        interleaver.run()
        for race in detector.races:
            addr = race.line * 16
            assert not run.globals_region.contains(addr), \
                f"race on the lock-protected globals: {race}"
            assert not run.table_region.contains(addr), \
                f"race on the read-only table: {race}"
