"""Tests for the binary trace-file format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.events import (Barrier, Compute, Ifetch, LockAcquire,
                                LockRelease, Read, TaskDequeue, TaskEnqueue,
                                Write)
from repro.trace.tracefile import (TraceFormatError, load_trace, save_trace)

ALL_STATIC_EVENTS = st.one_of(
    st.builds(Compute, st.integers(0, 2**40)),
    st.builds(Read, st.integers(0, 2**40)),
    st.builds(Write, st.integers(0, 2**40)),
    st.builds(Ifetch, st.integers(0, 2**40), st.integers(1, 64)),
    st.builds(LockAcquire, st.integers(0, 1000)),
    st.builds(LockRelease, st.integers(0, 1000)),
    st.builds(Barrier, st.integers(0, 1000), st.integers(1, 64)),
    st.builds(TaskEnqueue, st.integers(0, 1000), st.integers(0, 2**30)),
)


class TestRoundtrip:
    def test_simple_roundtrip(self, tmp_path):
        events = [Read(0x1000), Write(0x2000), Compute(500),
                  Barrier(1, 8), Ifetch(0x400, 12)]
        path = tmp_path / "trace.bin"
        assert save_trace(path, events) == 5
        assert load_trace(path) == events

    @given(st.lists(ALL_STATIC_EVENTS, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_any_static_stream_roundtrips(self, events):
        import tempfile, os
        fd, path = tempfile.mkstemp()
        os.close(fd)
        try:
            save_trace(path, events)
            assert load_trace(path) == events
        finally:
            os.unlink(path)


class TestErrors:
    def test_dynamic_event_not_encodable(self, tmp_path):
        with pytest.raises(TraceFormatError):
            save_trace(tmp_path / "t.bin", [TaskDequeue(0)])

    def test_non_integer_task_item_not_encodable(self, tmp_path):
        with pytest.raises(TraceFormatError):
            save_trace(tmp_path / "t.bin", [TaskEnqueue(0, "item")])

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"JUNKxxxxxxxxxxxxxx")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"SC")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_trailing_bytes_rejected(self, tmp_path):
        path = tmp_path / "t.bin"
        save_trace(path, [Read(1)])
        path.write_bytes(path.read_bytes() + b"\x00")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_truncated_events_rejected(self, tmp_path):
        path = tmp_path / "t.bin"
        save_trace(path, [Read(1), Read(2)])
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises((TraceFormatError, Exception)):
            load_trace(path)
