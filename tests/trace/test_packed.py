"""Tests for the packed (integer-opcode) event encoding."""

from array import array

import pytest

from repro.core.config import SystemConfig
from repro.core.system import MultiprocessorSystem
from repro.trace.events import (Barrier, Compute, Ifetch, LockAcquire,
                                LockRelease, Read, TaskDequeue, TaskEnqueue,
                                Write)
from repro.trace.interleave import TimingInterleaver
from repro.trace.packed import (OP_COMPUTE, OP_READ, OP_READ_SPAN, OP_WRITE,
                                OP_WRITE_SPAN, PackedChunk,
                                PackedEncodingError, append_event,
                                decode_events, encode_events, event_count,
                                packed_from_bytes, packed_to_bytes)

ALL_EVENTS = [
    Read(0x100), Write(0x108), Compute(25), Ifetch(0x4000, 8),
    LockAcquire(3), LockRelease(3), Barrier(1, 4), TaskEnqueue(2, 17),
    TaskDequeue(2),
]


class TestRoundTrip:
    def test_encode_decode_identity(self):
        packed = encode_events(ALL_EVENTS)
        assert list(decode_events(packed)) == ALL_EVENTS

    def test_event_count_matches_decode(self):
        packed = encode_events(ALL_EVENTS)
        assert event_count(packed) == len(ALL_EVENTS)

    def test_spans_decode_elementwise(self):
        data = [OP_READ_SPAN, 1000, 24, 8, OP_WRITE_SPAN, 2000, 16, 8]
        assert list(decode_events(data)) == [
            Read(1000), Read(1008), Read(1016), Write(2000), Write(2008)]
        assert event_count(data) == 5

    def test_bytes_round_trip(self):
        packed = encode_events(ALL_EVENTS)
        again = packed_from_bytes(packed_to_bytes(packed))
        assert isinstance(again, array)
        assert list(again) == list(packed)

    def test_bytes_accepts_plain_lists(self):
        data = [OP_READ, 64, OP_COMPUTE, 5]
        assert list(packed_from_bytes(packed_to_bytes(data))) == data


class TestEncodingErrors:
    def test_non_int_enqueue_item_rejected(self):
        with pytest.raises(PackedEncodingError):
            append_event([], TaskEnqueue(0, "task"))

    def test_bool_enqueue_item_rejected(self):
        # bools are ints in Python but would decode as 0/1 ints.
        with pytest.raises(PackedEncodingError):
            append_event([], TaskEnqueue(0, True))

    def test_non_event_rejected(self):
        with pytest.raises(PackedEncodingError):
            append_event([], "not an event")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            list(decode_events([99, 0]))
        with pytest.raises(ValueError):
            event_count([99, 0])


class TestPackedChunk:
    def test_len_counts_events(self):
        chunk = PackedChunk([OP_READ, 0, OP_READ_SPAN, 0, 24, 8])
        assert len(chunk) == 4
        assert "4 events" in repr(chunk)


def run_both_ways(events, **config_overrides):
    """Simulate the same stream as objects and as one packed chunk."""
    times = []
    for packed in (False, True):
        defaults = dict(clusters=1, processors_per_cluster=1)
        defaults.update(config_overrides)
        config = SystemConfig(**defaults)
        system = MultiprocessorSystem(config)
        interleaver = TimingInterleaver(system)
        if packed:
            def generator():
                yield PackedChunk(encode_events(events))
            interleaver.add_process(0, generator())
        else:
            interleaver.add_process(0, iter(list(events)))
        times.append((interleaver.run(), interleaver.events_processed))
    return times


class TestChunkEquivalence:
    def test_chunk_equals_object_stream(self):
        events = [Read(0x100), Compute(10), Write(0x100), Read(0x140),
                  Write(0x2000), Compute(3), Read(0x100)]
        object_run, packed_run = run_both_ways(events)
        assert packed_run == object_run

    def test_chunk_equals_object_stream_with_sync(self):
        events = [LockAcquire(0), Read(0x80), Write(0x80), LockRelease(0),
                  Barrier(0, 1), Compute(7)]
        object_run, packed_run = run_both_ways(events)
        assert packed_run == object_run

    def test_chunk_equals_object_stream_with_icache(self):
        events = [Ifetch(0x1000, 8), Read(0x80), Ifetch(0x1020, 8),
                  Ifetch(0x9000, 4), Compute(5)]
        object_run, packed_run = run_both_ways(events, model_icache=True)
        assert packed_run == object_run
