"""Tests for the sweep fidelity knob and its cache-key isolation.

The hard requirements: full-fidelity point keys stay byte-identical to
the historical format (warm caches survive the upgrade), analytical
results live under their own keys (an analytical run can never poison a
full-fidelity cache), and an analytical sweep touches the simulator only
to record one tape per (benchmark, procs) row -- never per grid point.
"""

import argparse

import pytest

from repro.core.config import KB
from repro.experiments.runner import ResultCache
from repro.experiments.session import SweepSession, run_sweep
from repro.experiments.spec import (FIDELITIES, ExperimentProfile,
                                    SweepSpec, point_cache_key)
from repro.model.profile import MODEL_VERSION
from repro.trace.record import TraceCache


@pytest.fixture
def tiny_profile():
    return ExperimentProfile(
        name="tiny", ladder_scale=8,
        barnes_bodies=32, barnes_steps=1,
        mp3d_particles=60, mp3d_steps=1,
        cholesky_n=64,
        multiprog_instructions=2000, multiprog_quantum=500)


def _spec(tiny_profile, **knobs):
    knobs.setdefault("ladder", (2 * KB, 4 * KB))
    knobs.setdefault("procs", (1, 2))
    if knobs.get("fidelity") == "analytical":
        knobs.setdefault("instrument", False)
    return SweepSpec.multiprogramming(profile=tiny_profile, **knobs)


class TestSpecValidation:
    def test_fidelities_constant(self):
        assert FIDELITIES == ("analytical", "fused", "full")

    def test_rejects_unknown_fidelity(self, tiny_profile):
        with pytest.raises(ValueError):
            _spec(tiny_profile, fidelity="fast")

    def test_analytical_refuses_instrumentation(self, tiny_profile):
        with pytest.raises(ValueError):
            SweepSpec.multiprogramming(profile=tiny_profile,
                                       fidelity="analytical",
                                       instrument=True)

    def test_miss_surface_has_no_analytical_mode(self, tiny_profile):
        with pytest.raises(ValueError):
            SweepSpec.miss_surface("mp3d", profile=tiny_profile,
                                   fidelity="analytical")


class TestPointKeys:
    def test_full_fidelity_keys_are_the_historical_format(
            self, tiny_profile):
        """fused and full must produce keys byte-identical to
        point_cache_key -- existing warm caches keep working."""
        for fidelity in ("fused", "full"):
            spec = _spec(tiny_profile, fidelity=fidelity)
            for config in spec.configs().values():
                assert spec.point_key(config) == point_cache_key(
                    spec.benchmark, spec.profile, config,
                    spec.instrument)

    def test_analytical_keys_carry_fidelity_and_model_version(
            self, tiny_profile):
        spec = _spec(tiny_profile, fidelity="analytical")
        plain = _spec(tiny_profile, instrument=False)
        for config in spec.configs().values():
            key = spec.point_key(config)
            assert key.endswith(
                f"|fidelity=analytical|model=v{MODEL_VERSION}")
            assert key.startswith(plain.point_key(config))

    def test_signatures_isolate_analytical_sessions(self, tiny_profile):
        fused = _spec(tiny_profile, instrument=False)
        full = _spec(tiny_profile, instrument=False, fidelity="full")
        analytical = _spec(tiny_profile, fidelity="analytical")
        # fused vs full is a resolution strategy, not an experiment
        # identity: they share journals.  Analytical does not.
        assert fused.signature() == full.signature()
        assert analytical.signature() != fused.signature()
        assert analytical.describe()["fidelity"] == "analytical"
        assert "fidelity" not in fused.describe()


class TestFromCliArgs:
    @staticmethod
    def _args(**overrides):
        defaults = dict(benchmark="multiprogramming", profile="tiny",
                        ladder=None, procs=None, no_instrument=False,
                        no_fused=False, jobs=None, resume=False,
                        retries=2, timeout=None, backoff=0.5,
                        fidelity=None)
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_default_is_fused(self):
        spec = SweepSpec.from_cli_args(self._args(profile="quick"))
        assert spec.fidelity == "fused"
        assert spec.instrument and spec.fused

    def test_analytical_implies_no_instrumentation(self):
        spec = SweepSpec.from_cli_args(
            self._args(profile="quick", fidelity="analytical"))
        assert spec.fidelity == "analytical"
        assert not spec.instrument

    def test_full_disables_fused_replay(self):
        spec = SweepSpec.from_cli_args(
            self._args(profile="quick", fidelity="full"))
        assert spec.fidelity == "full"
        assert not spec.fused


def counting_simulator(monkeypatch):
    """Wrap the real simulator entry point with a call counter."""
    from repro.experiments import runner
    real = runner.run_simulation
    calls = []

    def counted(config, application, **kwargs):
        calls.append(type(application).__name__)
        return real(config, application, **kwargs)

    monkeypatch.setattr(runner, "run_simulation", counted)
    return calls


class TestAnalyticalSession:
    def test_one_recording_per_row_then_zero(self, tmp_path,
                                             tiny_profile, monkeypatch):
        calls = counting_simulator(monkeypatch)
        spec = _spec(tiny_profile, fidelity="analytical")
        trace_cache = TraceCache(tmp_path / "traces")

        session = SweepSession(spec, cache=ResultCache(tmp_path / "r1"),
                               trace_cache=trace_cache)
        result = session.run()
        assert len(result.sweep) == len(spec.configs())
        # One recording simulation per procs row, nothing per point.
        assert len(calls) == len(spec.procs)
        assert session.counters["analytical"] == len(spec.configs())
        assert "4 analytical" in result.summary()

        # Warm trace cache, cold result cache: zero simulations.
        calls.clear()
        second = SweepSession(spec, cache=ResultCache(tmp_path / "r2"),
                              trace_cache=trace_cache)
        result2 = second.run()
        assert calls == []
        assert second.counters["analytical"] == len(spec.configs())
        for point, stats in result.sweep.items():
            assert result2.sweep[point].as_dict() == stats.as_dict()

    def test_analytical_results_never_serve_full_fidelity(
            self, tmp_path, tiny_profile):
        shared = ResultCache(tmp_path / "results")
        trace_cache = TraceCache(tmp_path / "traces")
        spec = _spec(tiny_profile, fidelity="analytical")
        run_sweep(spec, cache=shared, trace_cache=trace_cache)

        # The analytical run cached its own keys...
        assert all(shared.get(spec.point_key(c)) is not None
                   for c in spec.configs().values())
        # ...but left every full-fidelity key empty, except the row
        # anchor banked as a by-product of the recording simulation.
        full = _spec(tiny_profile, instrument=False)
        anchors = {(procs, min(spec.ladder)) for procs in spec.procs}
        for point, config in full.configs().items():
            cached = shared.get(full.point_key(config))
            if point in anchors:
                assert cached is not None    # real simulator output
            else:
                assert cached is None

    def test_analytical_reruns_hit_result_cache(self, tmp_path,
                                                tiny_profile):
        cache = ResultCache(tmp_path / "results")
        trace_cache = TraceCache(tmp_path / "traces")
        spec = _spec(tiny_profile, fidelity="analytical")
        run_sweep(spec, cache=cache, trace_cache=trace_cache)
        session = SweepSession(spec, cache=cache,
                               trace_cache=trace_cache)
        session.run()
        assert session.counters["cached"] == len(spec.configs())
        assert session.counters.get("analytical", 0) == 0


class TestStrictParallel:
    """strict_parallel: analytical sweeps refuse the surrogate on
    multi-processor parallel rows and resolve them exactly instead."""

    def _parallel_spec(self, tiny_profile, **knobs):
        knobs.setdefault("ladder", (2 * KB, 4 * KB))
        knobs.setdefault("procs", (1, 2))
        if knobs.get("fidelity") == "analytical":
            knobs.setdefault("instrument", False)
        return SweepSpec.parallel("mp3d", profile=tiny_profile, **knobs)

    def test_only_analytical_specs_accept_it(self, tiny_profile):
        with pytest.raises(ValueError, match="strict_parallel"):
            self._parallel_spec(tiny_profile, strict_parallel=True)
        spec = self._parallel_spec(tiny_profile, fidelity="analytical",
                                   strict_parallel=True)
        assert spec.strict_parallel

    def test_refusal_targets_multiproc_parallel_rows(self, tiny_profile):
        spec = self._parallel_spec(tiny_profile, fidelity="analytical",
                                   strict_parallel=True)
        configs = spec.configs()
        for (procs, _), config in configs.items():
            assert spec.analytical_refused(config) == (procs > 1)
        # Multiprogramming rows (single cluster) are never refused.
        multi = _spec(tiny_profile, fidelity="analytical",
                      strict_parallel=True)
        assert not any(multi.analytical_refused(c)
                       for c in multi.configs().values())

    def test_refused_rows_keep_exact_point_keys(self, tiny_profile):
        """A refused row resolves exactly, so it must be cached under
        the exact key -- mutually warm with ordinary fused sweeps and
        never serving a stale prediction."""
        strict = self._parallel_spec(tiny_profile, fidelity="analytical",
                                     strict_parallel=True)
        exact = self._parallel_spec(tiny_profile, instrument=False)
        for point, config in strict.configs().items():
            key = strict.point_key(config)
            if strict.analytical_refused(config):
                assert key == exact.point_key(config)
                assert "fidelity=analytical" not in key
            else:
                assert f"|model=v{MODEL_VERSION}" in key

    def test_strict_parallel_is_identity(self, tiny_profile):
        plain = self._parallel_spec(tiny_profile, fidelity="analytical")
        strict = self._parallel_spec(tiny_profile, fidelity="analytical",
                                     strict_parallel=True)
        assert plain.signature() != strict.signature()
        assert strict.describe()["strict_parallel"] is True
        assert "strict_parallel" not in plain.describe()

    def test_session_resolves_refused_rows_exactly(self, tmp_path,
                                                   tiny_profile):
        trace_cache = TraceCache(tmp_path / "traces")
        cache = ResultCache(tmp_path / "results")
        spec = self._parallel_spec(tiny_profile, fidelity="analytical",
                                   strict_parallel=True)
        session = SweepSession(spec, cache=cache,
                               trace_cache=trace_cache)
        result = session.run()
        assert len(result.sweep) == len(spec.configs())
        refused = sum(1 for c in spec.configs().values()
                      if spec.analytical_refused(c))
        assert refused > 0
        assert session.counters["analytical"] == \
            len(spec.configs()) - refused

        # Refused rows match a plain exact sweep bit-for-bit.
        exact = self._parallel_spec(tiny_profile, instrument=False)
        exact_result = run_sweep(exact, cache=cache,
                                 trace_cache=trace_cache)
        for point, config in spec.configs().items():
            if spec.analytical_refused(config):
                assert result.sweep[point].as_dict() == \
                    exact_result[point].as_dict()

    def test_wire_round_trip_preserves_new_fields(self, tiny_profile):
        spec = SweepSpec.parallel(
            "mp3d", profile=tiny_profile, ladder=(4 * KB,), procs=(1,),
            fidelity="analytical", instrument=False,
            strict_parallel=True,
            variants=(("associativity", 2), ("protocol", "mesi")))
        clone = SweepSpec.from_wire(spec.to_wire())
        assert clone == spec
        assert clone.strict_parallel
        assert clone.variants == (("associativity", 2),
                                  ("protocol", "mesi"))
