"""Tests for the tape profiler (repro.model.profile)."""

from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.model.profile import (MODEL_VERSION, ProfileCache, RowProfile,
                                 bucket_floor, build_row_profile,
                                 coherence_ladder, extract_process,
                                 merge_refs)
from repro.trace.packed import (OP_BARRIER, OP_COMPUTE, OP_IFETCH,
                                OP_LOCK_ACQ, OP_READ, OP_READ_SPAN,
                                OP_WRITE, OP_WRITE_SPAN, encode_events)
from repro.trace.events import Read, Write


class TestBucketFloor:
    def test_exact_below_threshold(self):
        for distance in (0, 1, 17, 127):
            assert bucket_floor(distance) == distance

    @given(st.integers(0, 1 << 40))
    @settings(max_examples=200, deadline=None)
    def test_floor_properties(self, distance):
        floor = bucket_floor(distance)
        assert floor <= distance
        assert bucket_floor(floor) == floor          # idempotent
        if distance >= 128:
            # Relative bucket error is bounded by one sub-bucket step.
            octave = distance.bit_length() - 1
            assert distance - floor < max(1, (1 << octave) // 8)

    @given(st.integers(0, 1 << 20), st.integers(0, 1 << 20))
    @settings(max_examples=100, deadline=None)
    def test_monotone(self, a, b):
        if a <= b:
            assert bucket_floor(a) <= bucket_floor(b)


class TestExtractProcess:
    def test_refs_and_summary(self):
        data = array("q", [
            OP_READ, 0,
            OP_WRITE, 16,
            OP_READ_SPAN, 32, 32, 16,     # lines 2, 3
            OP_WRITE_SPAN, 0, 16, 16,     # line 0
            OP_COMPUTE, 7,
            OP_IFETCH, 0, 4,
            OP_LOCK_ACQ, 1,
            OP_BARRIER, 0, 1,
        ])
        refs, summary = extract_process(data, line_shift=4)
        assert refs == [(0, 0), (1, 1), (0, 2), (0, 3), (1, 0)]
        assert summary["reads"] == 3
        assert summary["writes"] == 2
        assert summary["compute_cycles"] == 7
        assert summary["instructions"] == 4
        assert summary["lock_ops"] == 1
        assert summary["barriers"] == 1
        assert summary["icache_misses"] == 0      # no icache config

    def test_icache_misses_match_instruction_cache(self):
        """The profiler's inline icache model must agree with the
        simulator's InstructionCache on the same fetch sequence."""
        from repro.core.icache import InstructionCache
        config = SystemConfig(clusters=1, processors_per_cluster=1,
                              scc_size=1024, model_icache=True,
                              icache_size=512, icache_line_size=32)
        fetches = [(0, 4), (64, 8), (0, 4), (600, 16), (64, 8), (0, 2)]
        data = array("q")
        for addr, count in fetches:
            data.extend([OP_IFETCH, addr, count])
        reference = InstructionCache(config)
        for addr, count in fetches:
            reference.fetch(addr, count)
        _, summary = extract_process(data, config.line_offset_bits,
                                     icache_config=config)
        assert summary["icache_misses"] == reference.misses

    def test_rejects_unknown_opcode(self):
        with pytest.raises(ValueError):
            extract_process(array("q", [77]), 4)


class TestMergeRefs:
    def test_single_sequence_is_identity(self):
        refs = [(0, 1), (1, 2)]
        assert merge_refs([refs]) == refs

    @given(st.lists(st.lists(st.integers(0, 9), max_size=30),
                    min_size=1, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_merge_preserves_each_input_as_subsequence(self, sequences):
        tagged = [[(index, item) for item in seq]
                  for index, seq in enumerate(sequences)]
        merged = merge_refs(tagged)
        assert len(merged) == sum(len(seq) for seq in sequences)
        for index, seq in enumerate(tagged):
            filtered = [item for item in merged if item[0] == index]
            assert filtered == seq

    def test_fair_interleave(self):
        # Equal-length streams alternate rather than concatenate.
        merged = merge_refs([["a1", "a2"], ["b1", "b2"]])
        assert merged.index("b1") < merged.index("a2")


def brute_force_ladder(refs, clusters, procs_per_cluster, line_counts):
    """Reference model: independent direct-mapped caches per (cluster,
    size) with cross-cluster write-invalidate, no inclusion shortcuts."""
    tags = {(c, lc): {} for c in range(clusters) for lc in line_counts}
    out = [{"read_misses": 0, "write_misses": 0, "invalidations": 0}
           for _ in line_counts]
    for proc, is_write, line in refs:
        cluster = proc // procs_per_cluster
        for rung, lines in enumerate(line_counts):
            slots = tags[(cluster, lines)]
            index = line % lines
            if slots.get(index) != line:
                slots[index] = line
                key = "write_misses" if is_write else "read_misses"
                out[rung][key] += 1
        if is_write:
            for other in range(clusters):
                if other == cluster:
                    continue
                for rung, lines in enumerate(line_counts):
                    slots = tags[(other, lines)]
                    index = line % lines
                    if slots.get(index) == line:
                        del slots[index]
                        out[rung]["invalidations"] += 1
    return out


class TestCoherenceLadder:
    @given(st.lists(st.tuples(st.integers(0, 3), st.booleans(),
                              st.integers(0, 63)),
                    min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, raw):
        refs = [(proc, int(is_write), line)
                for proc, is_write, line in raw]
        line_counts = (4, 8, 16)
        ladder = coherence_ladder(refs, clusters=2, procs_per_cluster=2,
                                  line_counts=line_counts)
        expected = brute_force_ladder(refs, 2, 2, line_counts)
        for entry, reference in zip(ladder, expected):
            assert entry["read_misses"] == reference["read_misses"]
            assert entry["write_misses"] == reference["write_misses"]
            assert entry["invalidations"] == reference["invalidations"]

    def test_per_process_counts_sum_to_totals(self):
        refs = [(proc, proc % 2, line)
                for proc in range(4) for line in range(10)]
        ladder = coherence_ladder(refs, clusters=4, procs_per_cluster=1,
                                  line_counts=(4, 16))
        for entry in ladder:
            assert (sum(entry["proc_read_misses"].values())
                    == entry["read_misses"])
            assert (sum(entry["proc_write_misses"].values())
                    == entry["write_misses"])

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            coherence_ladder([], 1, 1, (3,))
        with pytest.raises(ValueError):
            coherence_ladder([], 1, 1, (8, 4))


class TestRowProfile:
    def _profile(self):
        config = SystemConfig(clusters=2, processors_per_cluster=1,
                              scc_size=256, line_size=16)
        streams = {
            0: encode_events([Read(0), Read(16), Write(0), Read(32)]),
            1: encode_events([Read(0), Write(16), Read(48)]),
        }
        return build_row_profile(streams, config, (4, 16))

    def test_roundtrips_through_json_dict(self):
        profile = self._profile()
        clone = RowProfile.from_dict(profile.as_dict())
        assert clone.as_dict() == profile.as_dict()
        assert clone.tracked_line_counts == (4, 16)
        assert clone.reads == 5 and clone.writes == 2

    def test_rejects_other_model_versions(self):
        payload = dict(self._profile().as_dict())
        payload["model_version"] = MODEL_VERSION + 1
        with pytest.raises(ValueError):
            RowProfile.from_dict(payload)

    def test_sharing_summary_sees_cross_cluster_writes(self):
        sharing = self._profile().sharing
        # Lines 0 and 16 are touched by both clusters.
        assert sharing["shared_lines"] == 2
        assert sharing["interprocess_reuses"] > 0
        assert set(sharing["exposure"]) == {"0", "1"}

    def test_cache_roundtrip_and_corruption(self, tmp_path):
        cache = ProfileCache(tmp_path)
        profile = self._profile()
        assert cache.get("row") is None
        cache.put("row", profile)
        assert cache.get("row").as_dict() == profile.as_dict()
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        assert cache.get("row") is None         # discarded, not raised
        assert not list(tmp_path.glob("*.json"))
