"""End-to-end cross-validation of the surrogate on a reduced grid.

The CI ``model-validate`` job runs the full quick-profile grid through
``python -m repro model --validate``; this test keeps a fast in-process
version of the same contract in the tier-1 suite.
"""

import pytest

from repro.core.config import KB
from repro.experiments.runner import ResultCache
from repro.experiments.spec import ExperimentProfile
from repro.model.validate import DEFAULT_ROWS, cross_validate
from repro.trace.record import TraceCache


@pytest.fixture
def tiny_profile():
    return ExperimentProfile(
        name="tiny", ladder_scale=8,
        barnes_bodies=32, barnes_steps=1,
        mp3d_particles=60, mp3d_steps=1,
        cholesky_n=64,
        multiprog_instructions=2000, multiprog_quantum=500)


def test_default_rows_cover_every_workload_and_the_procs_sweep():
    benchmarks = {benchmark for benchmark, _ in DEFAULT_ROWS}
    assert benchmarks == {"multiprogramming", "barnes-hut", "mp3d",
                          "cholesky"}
    multiprog_procs = {procs for benchmark, procs in DEFAULT_ROWS
                       if benchmark == "multiprogramming"}
    assert multiprog_procs == {1, 2, 4, 8}


def test_reduced_grid_meets_the_acceptance_bound(tmp_path,
                                                 tiny_profile):
    report = cross_validate(
        profile=tiny_profile,
        rows=(("multiprogramming", 1), ("multiprogramming", 2)),
        ladder=(2 * KB, 4 * KB, 8 * KB),
        cache=ResultCache(tmp_path / "results"),
        trace_cache=TraceCache(tmp_path / "traces"),
        session_dir=tmp_path / "sessions")

    assert {row["benchmark"] for row in report["rows"]} == {
        "multiprogramming"}
    assert len(report["rows"]) == 2
    for row in report["rows"]:
        assert len(row["points"]) == 3
        for point in row["points"]:
            assert 0.0 <= point["predicted_miss_rate"] <= 1.0
            assert point["error"] == pytest.approx(
                abs(point["predicted_miss_rate"]
                    - point["true_miss_rate"]))
    # Uniprocessor rows are exact by construction.
    uni = next(row for row in report["rows"] if row["procs"] == 1)
    assert uni["mae"] == pytest.approx(0.0, abs=1e-9)
    # The ISSUE acceptance bound, on the reduced grid.
    assert report["mae"] <= 0.05
    assert report["max_error"] == pytest.approx(
        max(row["max_error"] for row in report["rows"]))
