"""Exactness and sanity tests for the analytical predictor."""

import pytest

from repro.core.config import KB, SystemConfig
from repro.experiments.runner import _simulate
from repro.model import build_row_profile, predict_point
from repro.trace.events import Read, Write
from repro.trace.packed import encode_events
from repro.trace.record import ReplayApplication, StreamRecorder
from repro.workloads.barnes_hut import BarnesHut


def p1_config(scc_size, **kwargs):
    return SystemConfig(clusters=1, processors_per_cluster=1,
                        scc_size=scc_size, **kwargs)


def tracked_for(configs):
    return tuple(sorted({c.scc_size // c.line_size for c in configs}))


class TestExactCases:
    """Configurations where the analytical answer must equal the
    simulator bit-for-bit (direct-mapped, tracked sizes)."""

    def test_cold_only_stream(self):
        """Distinct lines, never reused: every reference misses and the
        model must say so exactly."""
        streams = {0: encode_events([Read(i * 16) for i in range(64)])}
        config = p1_config(16 * KB)
        profile = build_row_profile(streams, config,
                                    (config.scc_size // 16,))
        predicted = predict_point(profile, config)
        truth = _simulate(ReplayApplication(streams), config, False)
        assert predicted.miss_rate == pytest.approx(1.0)
        assert predicted.miss_rate == pytest.approx(truth.miss_rate)
        assert predicted.read_miss_rate == pytest.approx(
            truth.read_miss_rate)

    def test_working_set_smaller_than_cache(self):
        """Hot loop over 8 lines inside a 256-line cache: only the 8
        cold misses survive at every tracked size."""
        refs = [Read((i % 8) * 16) for i in range(400)]
        refs += [Write((i % 8) * 16) for i in range(100)]
        streams = {0: encode_events(refs)}
        configs = [p1_config(4 * KB), p1_config(16 * KB)]
        profile = build_row_profile(streams, configs[0],
                                    tracked_for(configs))
        for config in configs:
            predicted = predict_point(profile, config)
            truth = _simulate(ReplayApplication(streams), config, False)
            assert predicted.miss_rate == pytest.approx(truth.miss_rate)
            assert predicted.miss_rate == pytest.approx(8 / 500)

    def test_barnes_hut_row_matches_simulator_across_ladder(self):
        """A real recorded row: predictions at every tracked rung must
        equal replaying the same tape through the simulator."""
        recorder = StreamRecorder(BarnesHut(n_bodies=32, steps=1))
        config0 = p1_config(1 * KB)
        _simulate(recorder, config0, False)
        configs = [p1_config(s) for s in (1 * KB, 4 * KB, 16 * KB)]
        profile = build_row_profile(recorder.streams, config0,
                                    tracked_for(configs))
        for config in configs:
            predicted = predict_point(profile, config,
                                      benchmark="barnes-hut")
            truth = _simulate(ReplayApplication(recorder.streams),
                              config, False)
            assert predicted.miss_rate == pytest.approx(truth.miss_rate)
            assert predicted.read_miss_rate == pytest.approx(
                truth.read_miss_rate)
            assert predicted.invalidations == truth.invalidations == 0


class TestCrossClusterSharing:
    def _row(self):
        shared = [Write(i * 16) if i % 3 == 0 else Read(i * 16)
                  for i in range(32)] * 4
        streams = {0: encode_events(shared),
                   1: encode_events(list(reversed(shared)))}
        config = SystemConfig(clusters=2, processors_per_cluster=1,
                              scc_size=4 * KB)
        return streams, config

    def test_invalidations_predicted(self):
        streams, config = self._row()
        profile = build_row_profile(streams, config,
                                    (config.scc_size // 16,))
        predicted = predict_point(profile, config)
        truth = _simulate(ReplayApplication(streams), config, False)
        assert predicted.invalidations > 0
        # Interleaving drift bounds the agreement, it does not break it.
        assert predicted.miss_rate == pytest.approx(truth.miss_rate,
                                                    abs=0.05)


def scattered_lines(count, span, seed=12345):
    """Deterministic LCG reference sequence over ``span`` distinct lines
    whose physical line numbers are themselves hash-scattered.  The
    binomial set-mapping model assumes lines land in sets randomly, so
    its accuracy tests need scattered addresses -- compact or strided
    line numbers map to sets with zero (or total) conflict and are the
    known-adversarial cases for any random-mapping model."""
    state = 99991
    table = []
    for _ in range(span):
        state = (state * 1103515245 + 12345) % (1 << 31)
        table.append(state >> 8)                 # ~23-bit line numbers
    state = seed
    out = []
    for _ in range(count):
        state = (state * 1103515245 + 12345) % (1 << 31)
        out.append(table[(state >> 7) % span])
    return out


class TestBinomialPath:
    def _profile_and_configs(self):
        refs = [Read(line * 16) for line in scattered_lines(2000, 96)]
        streams = {0: encode_events(refs)}
        dm = p1_config(1 * KB)
        profile = build_row_profile(streams, dm, (dm.scc_size // 16,))
        return streams, profile, dm

    def test_associative_prediction_is_bounded_and_ordered(self):
        _, profile, dm = self._profile_and_configs()
        rates = []
        for ways in (1, 2, 4, 8):
            config = p1_config(1 * KB, associativity=ways)
            stats = predict_point(profile, config)
            assert 0.0 < stats.miss_rate <= 1.0
            rates.append(stats.miss_rate)
        # On scattered traffic, associativity never predicts more misses.
        assert rates == sorted(rates, reverse=True)
        assert rates[0] > rates[-1]    # and it actually helps here

    def test_single_set_degenerates_to_fully_associative(self):
        """associativity == lines means one set: the prediction must
        collapse to the exact fully-associative rule (hit iff stack
        distance < capacity), recomputable from the profile itself."""
        _, profile, dm = self._profile_and_configs()
        lines = dm.scc_size // 16
        config = p1_config(1 * KB, associativity=lines)
        stats = predict_point(profile, config)
        histogram = profile.cluster_histogram(0)
        expected = histogram.cold_reads + histogram.cold_writes
        for floor, (read_count, write_count) in histogram.buckets.items():
            if floor >= lines:
                expected += read_count + write_count
        assert stats.miss_rate == pytest.approx(expected / 2000)

    def test_untracked_direct_mapped_size_interpolates(self):
        streams, profile, dm = self._profile_and_configs()
        config = p1_config(2 * KB)     # 128 lines: not tracked
        stats = predict_point(profile, config)
        truth = _simulate(ReplayApplication(streams), config, False)
        assert stats.miss_rate == pytest.approx(truth.miss_rate,
                                                abs=0.08)


class TestGeometryGuards:
    def test_rejects_mismatched_row_geometry(self):
        streams = {0: encode_events([Read(0)])}
        config = p1_config(4 * KB)
        profile = build_row_profile(streams, config, (256,))
        for bad in (
            SystemConfig(clusters=2, processors_per_cluster=1,
                         scc_size=4 * KB),
            p1_config(4 * KB, line_size=32),
        ):
            with pytest.raises(ValueError):
                predict_point(profile, bad)

    def test_execution_time_is_positive_int(self):
        streams = {0: encode_events([Read(0), Write(16)])}
        config = p1_config(4 * KB)
        profile = build_row_profile(streams, config, (256,))
        stats = predict_point(profile, config, benchmark="barnes-hut")
        assert isinstance(stats.execution_time, int)
        assert stats.execution_time > 0


class TestParallelFidelityGuard:
    """Multi-processor parallel rows are outside the surrogate's
    validated regime: by default it warns (once), and strict callers
    get a refusal they can catch to fall back to exact tiers."""

    def _parallel_profile(self):
        streams = {p: encode_events([Read((p * 64 + i) * 16)
                                     for i in range(16)])
                   for p in range(4)}
        config = SystemConfig(clusters=2, processors_per_cluster=2,
                              scc_size=4 * KB)
        return build_row_profile(streams, config,
                                 (config.scc_size // 16,)), config

    def _reset_warning(self, monkeypatch):
        from repro.model import predictor
        monkeypatch.setattr(predictor, "_PARALLEL_WARNING_EMITTED",
                            False)

    def test_warns_once_by_default(self, monkeypatch):
        self._reset_warning(monkeypatch)
        profile, config = self._parallel_profile()
        with pytest.warns(RuntimeWarning, match="known-bad"):
            predict_point(profile, config)
        # One-shot: the second prediction stays silent.
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            predict_point(profile, config)

    def test_strict_parallel_raises(self, monkeypatch):
        from repro.model import ParallelFidelityError
        self._reset_warning(monkeypatch)
        profile, config = self._parallel_profile()
        with pytest.raises(ParallelFidelityError, match="known-bad"):
            predict_point(profile, config, strict_parallel=True)

    def test_single_processor_rows_stay_silent(self, monkeypatch):
        self._reset_warning(monkeypatch)
        streams = {0: encode_events([Read(i * 16) for i in range(8)]),
                   1: encode_events([Read(i * 16) for i in range(8)])}
        config = SystemConfig(clusters=2, processors_per_cluster=1,
                              scc_size=4 * KB)
        profile = build_row_profile(streams, config,
                                    (config.scc_size // 16,))
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            predict_point(profile, config, strict_parallel=True)
