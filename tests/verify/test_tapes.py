"""Tests for the seeded adversarial tape generator."""

import pytest

from repro.trace.events import Barrier, LockAcquire, LockRelease
from repro.trace.packed import PackedChunk, decode_events
from repro.verify import (Tape, TapeApplication, generate_tape,
                          tape_from_json, tape_to_json)

SEEDS = [f"tapes:{i}" for i in range(25)]


class TestGeneration:
    def test_generation_is_deterministic(self):
        first = generate_tape("determinism")
        second = generate_tape("determinism")
        assert first.config_kwargs == second.config_kwargs
        assert first.streams == second.streams

    def test_distinct_seeds_give_distinct_tapes(self):
        tapes = [generate_tape(f"distinct:{i}") for i in range(8)]
        fingerprints = {(tuple(sorted(t.config_kwargs.items())),
                         tuple((p, tuple(s))
                               for p, s in sorted(t.streams.items())))
                        for t in tapes}
        assert len(fingerprints) == len(tapes)

    def test_seed_is_stringified(self):
        assert generate_tape(42).seed == "42"
        assert generate_tape(42).streams == generate_tape("42").streams

    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_tapes_are_well_formed(self, seed):
        tape = generate_tape(seed)
        config = tape.config()  # raises if the sampled geometry is bad
        assert set(tape.streams) == set(range(config.total_processors))
        assert tape.total_events() > 0
        for stream in tape.streams.values():
            assert stream  # no empty streams
            list(decode_events(stream))  # every opcode decodes

    @pytest.mark.parametrize("seed", SEEDS)
    def test_locks_are_balanced_within_each_stream(self, seed):
        tape = generate_tape(seed)
        for stream in tape.streams.values():
            held = set()
            for event in decode_events(stream):
                if isinstance(event, LockAcquire):
                    assert event.lock_id not in held
                    held.add(event.lock_id)
                elif isinstance(event, LockRelease):
                    assert event.lock_id in held
                    held.remove(event.lock_id)
            assert not held

    @pytest.mark.parametrize("seed", SEEDS[:10])
    def test_barriers_are_global_and_matched(self, seed):
        """Every stream arrives at the same barrier episodes with the
        full processor count, so generated tapes cannot deadlock."""
        tape = generate_tape(seed)
        procs = tape.config().total_processors
        episodes = []
        for _pid, stream in sorted(tape.streams.items()):
            barriers = [(e.barrier_id, e.count)
                        for e in decode_events(stream)
                        if isinstance(e, Barrier)]
            assert all(count == procs for _, count in barriers)
            episodes.append(barriers)
        assert all(eps == episodes[0] for eps in episodes)

    def test_generator_reaches_the_whole_envelope(self):
        """Across a modest seed range the sampler hits multiprocessor,
        set-associative, icache-modelling, and MESI machines."""
        configs = [generate_tape(f"envelope:{i}").config()
                   for i in range(60)]
        assert any(c.total_processors > 1 for c in configs)
        assert any(c.total_processors == 1 for c in configs)
        assert any(c.associativity == 2 for c in configs)
        assert any(c.model_icache for c in configs)
        assert any(c.protocol == "mesi" for c in configs)
        assert any(c.protocol == "msi" for c in configs)


class TestTapeContainer:
    def test_replaced_keeps_machine_and_seed(self):
        tape = generate_tape("replace")
        slim = tape.replaced({0: list(tape.streams[0])})
        assert slim.seed == tape.seed
        assert slim.config_kwargs == tape.config_kwargs
        assert set(slim.streams) == {0}

    def test_application_yields_packed_chunks(self):
        tape = generate_tape("application")
        processes = TapeApplication(tape).processes(tape.config())
        assert set(processes) == set(tape.streams)
        for pid, iterator in processes.items():
            chunks = list(iterator)
            assert len(chunks) == 1
            assert isinstance(chunks[0], PackedChunk)
            assert list(chunks[0].data) == list(tape.streams[pid])


class TestPersistence:
    def test_json_roundtrip(self):
        tape = generate_tape("roundtrip")
        restored = tape_from_json(tape_to_json(tape))
        assert restored.seed == tape.seed
        assert restored.config_kwargs == tape.config_kwargs
        assert restored.streams == tape.streams

    def test_unsupported_version_rejected(self):
        text = tape_to_json(generate_tape("versioned"))
        with pytest.raises(ValueError):
            tape_from_json(text.replace('"version": 1', '"version": 99'))

    def test_hand_built_tape_roundtrips(self):
        tape = Tape(seed="hand", config_kwargs={"clusters": 1,
                                                "scc_size": 512},
                    streams={0: [1, 0, 2, 16]})
        assert tape_from_json(tape_to_json(tape)).streams == tape.streams
