"""Tests for the differential runner."""

import pytest

from repro.verify import PathResult, TapeDivergence, diff_tape, \
    generate_tape, run_tape
from repro.verify.differ import _compare, _diff_values, fused_eligible

SEEDS = [f"differ:{i}" for i in range(12)]


class TestAgreement:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_engines_agree_on_generated_tapes(self, seed):
        divergence = diff_tape(generate_tape(seed))
        assert divergence is None, divergence.summary()

    def test_fast_path_actually_engages(self):
        """The comparison is vacuous if ``_run_fast`` never runs; the
        sampled envelope must include machines that qualify."""
        engaged = [run_tape(generate_tape(seed), "fast").fast_engaged
                   for seed in SEEDS]
        assert any(engaged)

    def test_generic_and_fast_fingerprints_match_fully(self):
        seed = next(seed for seed in SEEDS
                    if run_tape(generate_tape(seed), "fast").fast_engaged)
        tape = generate_tape(seed)
        generic = run_tape(tape, "generic")
        fast = run_tape(tape, "fast")
        assert generic.error is None and fast.error is None
        assert generic.fingerprint == fast.fingerprint

    def test_fused_engine_compared_when_eligible(self):
        tapes = [generate_tape(f"fused:{i}") for i in range(60)]
        eligible = [t for t in tapes if fused_eligible(t)]
        assert eligible  # the generator reaches the fused envelope
        tape = eligible[0]
        fused = run_tape(tape, "fused")
        generic = run_tape(tape, "generic")
        assert fused.error is None
        assert fused.fingerprint["events"] == \
            generic.fingerprint["events"]
        assert fused.fingerprint["stats"] == generic.fingerprint["stats"]

    def test_multiprocessor_tapes_are_never_fused_eligible(self):
        tape = next(t for t in (generate_tape(f"mp:{i}")
                                for i in range(40))
                    if t.config().total_processors > 1)
        assert not fused_eligible(tape)


class TestComparison:
    def _results(self, **overrides):
        base = PathResult(name="generic",
                          fingerprint={"events": 10,
                                       "stats": {"reads": 4}})
        other = PathResult(name="fast",
                           fingerprint={"events": 10,
                                        "stats": {"reads": 4}})
        for key, value in overrides.items():
            setattr(other, key, value)
        return base, other

    def test_identical_fingerprints_agree(self):
        tape = generate_tape("cmp:0")
        base, other = self._results()
        assert _compare(tape, base, other, ("events", "stats")) is None

    def test_field_difference_is_a_divergence(self):
        tape = generate_tape("cmp:1")
        base, other = self._results(
            fingerprint={"events": 10, "stats": {"reads": 5}})
        divergence = _compare(tape, base, other, ("events", "stats"))
        assert isinstance(divergence, TapeDivergence)
        assert divergence.kind == "fast"
        assert any("stats.reads" in line for line in divergence.detail)
        assert "fast diverges from generic" in divergence.summary()

    def test_same_error_type_is_agreement(self):
        tape = generate_tape("cmp:2")
        base, other = self._results()
        base.error = ("SyncProtocolError", "release of un-held lock")
        other.error = ("SyncProtocolError", "different message is fine")
        assert _compare(tape, base, other, ("events",)) is None

    def test_one_sided_error_is_a_divergence(self):
        tape = generate_tape("cmp:3")
        base, other = self._results(error=("RuntimeError", "boom"))
        divergence = _compare(tape, base, other, ("events",))
        assert divergence is not None
        assert "error" in divergence.detail[0]

    def test_mismatched_error_types_diverge(self):
        tape = generate_tape("cmp:4")
        base, other = self._results(error=("ValueError", "boom"))
        base.error = ("RuntimeError", "bang")
        assert _compare(tape, base, other, ("events",)) is not None

    def test_diff_values_reports_nested_paths(self):
        out = []
        _diff_values("stats", {"a": {"b": 1}, "c": [1, 2]},
                     {"a": {"b": 2}, "c": [1, 2]}, out)
        assert out == ["stats.a.b: 1 != 2"]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_tape(generate_tape("cmp:5"), "turbo")


class TestRunawayGuard:
    def test_max_cycles_bounds_every_path(self):
        """An absurdly small cycle budget trips the same error on both
        sides, which the differ treats as agreement (error parity)."""
        # (The fused engine takes no cycle bound, so stay off tapes it
        # would also run.)
        tape = next(t for t in (generate_tape(f"runaway:{i}")
                                for i in range(20))
                    if not fused_eligible(t))
        generic = run_tape(tape, "generic", max_cycles=1)
        assert generic.error is not None
        assert diff_tape(tape, max_cycles=1) is None
