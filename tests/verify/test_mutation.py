"""Mutation check: the differential verifier must catch a deliberately
injected off-by-one in the packed fast path and shrink it to a small
repro.  ``CoherenceController.read_miss`` is the fast-path-only protocol
entry (the generic loop goes through ``read_line``), so perturbing it
diverges exactly the ``fast`` engine from the generic baseline."""

import pytest

from repro.core.coherence import CoherenceController
from repro.verify import diff_tape, generate_tape, run_fuzz, shrink_tape

MUTANT_SEED_LIMIT = 40


@pytest.fixture
def off_by_one_read_miss(monkeypatch):
    original = CoherenceController.read_miss

    def patched(self, scc, line, start):
        return original(self, scc, line, start) + 1

    monkeypatch.setattr(CoherenceController, "read_miss", patched)


def _first_diverging_tape():
    for index in range(MUTANT_SEED_LIMIT):
        tape = generate_tape(f"0:{index}")
        divergence = diff_tape(tape)
        if divergence is not None:
            return tape, divergence
    pytest.fail("no generated tape engaged the mutated fast path")


class TestMutationIsCaught:
    def test_injected_off_by_one_diverges_the_fast_path(
            self, off_by_one_read_miss):
        _tape, divergence = _first_diverging_tape()
        assert divergence.kind == "fast"
        assert divergence.detail  # field-level diff, not a crash

    def test_divergence_shrinks_to_a_small_repro(self,
                                                 off_by_one_read_miss):
        tape, _ = _first_diverging_tape()
        shrunk, checks = shrink_tape(tape)
        assert checks >= 1
        assert shrunk.total_events() <= 50  # acceptance bound
        assert diff_tape(shrunk) is not None  # still reproduces

    def test_fuzz_campaign_reports_and_persists_the_repro(
            self, off_by_one_read_miss, tmp_path):
        report = run_fuzz(seed=0, budget=10, out_dir=tmp_path)
        assert not report.ok
        assert report.divergences
        record = report.divergences[0]
        assert record.kind == "fast"
        assert record.shrunk_events is not None
        assert record.shrunk_events <= 50
        assert record.shrunk_events <= record.original_events
        assert record.repro_path is not None and record.repro_path.exists()
        assert report.counters["diverged"] >= 1


class TestUnmutatedBaseline:
    def test_same_seeds_are_clean_without_the_mutation(self, tmp_path):
        report = run_fuzz(seed=0, budget=10, out_dir=tmp_path)
        assert report.ok, report.summary()
        assert report.counters["clean"] == 10
        assert not list(tmp_path.iterdir())  # no repro files written

    def test_shrunk_mutant_repro_is_clean_on_the_fixed_tree(self):
        """The tape that reproduces under the mutation must not diverge
        on the real implementation -- proving the shrink predicate
        tracked the injected bug, not generator noise."""
        original = CoherenceController.read_miss

        def patched(self, scc, line, start):
            return original(self, scc, line, start) + 1

        CoherenceController.read_miss = patched
        try:
            tape, _ = _first_diverging_tape()
            shrunk, _ = shrink_tape(tape)
        finally:
            CoherenceController.read_miss = original
        assert diff_tape(shrunk) is None
