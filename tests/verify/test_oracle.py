"""Tests for the functional MESI oracle."""

from array import array

import pytest

from repro.core.cache import MODIFIED, SHARED
from repro.core.config import SystemConfig
from repro.core.system import MultiprocessorSystem
from repro.trace.interleave import TimingInterleaver
from repro.trace.packed import OP_READ, OP_WRITE, PackedChunk
from repro.verify import (FunctionalOracle, OracleViolation, generate_tape,
                          run_tape)
from repro.verify.oracle import _RefCache


def run_observed(streams, **config_kwargs):
    """Drive packed per-processor streams through the generic loop with
    an attached oracle; returns (system, oracle)."""
    config_kwargs.setdefault("clusters", 2)
    config_kwargs.setdefault("scc_size", 512)
    config_kwargs.setdefault("line_size", 16)
    config = SystemConfig(**config_kwargs)
    system = MultiprocessorSystem(config)
    oracle = FunctionalOracle(system)
    interleaver = TimingInterleaver(system, observer=oracle)
    for pid, stream in streams.items():
        interleaver.add_process(pid,
                                iter([PackedChunk(array("q", stream))]))
    interleaver.run()
    return system, oracle


class TestCleanRuns:
    @pytest.mark.parametrize("seed", [f"oracle:{i}" for i in range(10)])
    def test_oracle_agrees_with_the_machine(self, seed):
        result = run_tape(generate_tape(seed), "oracle")
        assert result.error is None

    def test_every_access_is_checked(self):
        _, oracle = run_observed({0: [OP_READ, 0, OP_WRITE, 16],
                                  1: [OP_READ, 0]})
        oracle.verify_final()
        assert oracle.accesses_checked == 3


class TestCorruptionDetection:
    def test_missing_line_detected(self):
        system, oracle = run_observed({0: [OP_READ, 0, OP_READ, 16]})
        scc = system.clusters[0].scc
        line = next(iter(scc.array.resident_lines()))[0]
        scc.drop_inflight(line)  # keep the inclusion check quiet
        assert scc.array.invalidate(line)
        with pytest.raises(OracleViolation, match="missing"):
            oracle.verify_final()

    def test_wrong_state_detected(self):
        # Both clusters read line 0: SHARED everywhere.  Silently
        # promoting one copy contradicts the model (and exclusivity).
        system, oracle = run_observed({0: [OP_READ, 0], 1: [OP_READ, 0]})
        system.clusters[0].scc.array.set_state(0, MODIFIED)
        with pytest.raises(OracleViolation):
            oracle.verify_final()

    def test_stale_inflight_fill_detected(self):
        system, oracle = run_observed({0: [OP_READ, 0]})
        # An in-flight fill for a line that is not resident is exactly
        # the leak the unconditional drop_inflight hardening prevents.
        system.clusters[1].scc.note_fill(5, ready=10_000)
        with pytest.raises(OracleViolation, match="non-resident"):
            oracle.verify_final()

    def test_detection_fires_mid_run_too(self):
        """on_access verifies the state left by the previous transaction,
        so corruption surfaces on the next access, not only at the end."""
        config = SystemConfig(clusters=1, scc_size=512, line_size=16)
        system = MultiprocessorSystem(config)
        oracle = FunctionalOracle(system)
        oracle.on_access(0, 0, is_write=False)
        system.coherence.access(0, 0, False, 0)
        system.clusters[0].scc.array.set_state(0, MODIFIED)
        with pytest.raises(OracleViolation):
            oracle.on_access(0, 16, is_write=False)


class TestRefCache:
    def test_direct_mapped_conflict_evicts(self):
        cache = _RefCache(num_lines=4, associativity=1)
        cache.install(1, SHARED)
        cache.install(5, SHARED)  # same set as 1
        assert cache.lookup(1) is None
        assert cache.lookup(5) == SHARED

    def test_set_associative_evicts_lru(self):
        cache = _RefCache(num_lines=4, associativity=2)
        cache.install(0, SHARED)
        cache.install(2, SHARED)
        cache.touch(0)  # 2 becomes LRU
        cache.install(4, SHARED)
        assert cache.lookup(2) is None
        assert cache.lookup(0) == SHARED
        assert cache.lookup(4) == SHARED

    def test_install_over_resident_updates_in_place(self):
        cache = _RefCache(num_lines=4, associativity=2)
        cache.install(0, SHARED)
        cache.install(2, SHARED)
        cache.install(2, MODIFIED)  # no eviction, state update + MRU
        assert cache.resident() == {0: SHARED, 2: MODIFIED}

    def test_set_state_requires_residency(self):
        cache = _RefCache(num_lines=4, associativity=1)
        with pytest.raises(KeyError):
            cache.set_state(3, MODIFIED)

    def test_invalidate_reports_presence(self):
        cache = _RefCache(num_lines=4, associativity=1)
        cache.install(3, MODIFIED)
        assert cache.invalidate(3)
        assert not cache.invalidate(3)
