"""Tests for the supervised fuzz campaign (crash quarantine, counters,
progress reporting) -- divergence handling is covered by the mutation
check in test_mutation.py."""

import pytest

from repro.verify import run_fuzz
from repro.verify import fuzz as fuzz_module


class TestCampaign:
    def test_clean_campaign_counts_every_case(self, tmp_path):
        seen = []
        report = run_fuzz(seed=7, budget=12, out_dir=tmp_path,
                          progress=lambda index, budget, status, seed:
                          seen.append((index, status)))
        assert report.ok
        assert report.cases == 12
        assert report.counters == {"total": 12, "clean": 12}
        assert [index for index, _ in seen] == list(range(12))
        assert all(status == "clean" for _, status in seen)
        assert "12 clean" in report.summary()

    def test_case_seeds_derive_from_master_seed(self, tmp_path,
                                                monkeypatch):
        diffed = []
        monkeypatch.setattr(fuzz_module, "diff_tape",
                            lambda tape, max_cycles: diffed.append(
                                tape.seed) or None)
        run_fuzz(seed=3, budget=4, out_dir=tmp_path)
        assert diffed == ["3:0", "3:1", "3:2", "3:3"]

    def test_crashing_case_is_quarantined_not_fatal(self, tmp_path,
                                                    monkeypatch):
        real_diff = fuzz_module.diff_tape

        def flaky(tape, max_cycles):
            if tape.seed == "5:1":
                raise RuntimeError("differ exploded")
            return real_diff(tape, max_cycles=max_cycles)

        monkeypatch.setattr(fuzz_module, "diff_tape", flaky)
        report = run_fuzz(seed=5, budget=3, out_dir=tmp_path)
        assert not report.ok
        assert report.quarantined == \
            [("5:1", "RuntimeError: differ exploded")]
        assert report.counters["quarantined"] == 1
        assert report.counters["clean"] == 2
        assert "1 quarantined" in report.summary()

    def test_campaigns_are_deterministic(self, tmp_path):
        first = run_fuzz(seed=11, budget=6, out_dir=tmp_path)
        second = run_fuzz(seed=11, budget=6, out_dir=tmp_path)
        assert first.counters == second.counters
        assert first.ok and second.ok
