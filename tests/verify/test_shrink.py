"""Tests for tape repair, delta-debugging, and repro persistence."""

import json

import pytest

from repro.trace.events import (Barrier, LockAcquire, LockRelease, Read,
                                Write)
from repro.trace.packed import decode_events
from repro.verify import (PathResult, Tape, TapeDivergence, generate_tape,
                          shrink_tape, tape_from_json, write_repro)
from repro.verify.shrink import default_repro_dir, repair


class TestRepair:
    def test_balanced_streams_pass_through(self):
        events = [LockAcquire(1), Write(0), LockRelease(1), Read(16)]
        assert repair({0: list(events)}) == {0: events}

    def test_reacquire_of_held_lock_dropped(self):
        repaired = repair({0: [LockAcquire(1), LockAcquire(1), Write(0),
                               LockRelease(1)]})
        assert repaired[0] == [LockAcquire(1), Write(0), LockRelease(1)]

    def test_release_of_unheld_lock_dropped(self):
        repaired = repair({0: [LockRelease(1), Write(0)]})
        assert repaired[0] == [Write(0)]

    def test_unmatched_acquire_dropped(self):
        repaired = repair({0: [Read(0), LockAcquire(1), Write(16)]})
        assert repaired[0] == [Read(0), Write(16)]

    def test_barrier_counts_truncated_to_minimum(self):
        repaired = repair({
            0: [Barrier(0, 2), Write(0), Barrier(0, 2)],
            1: [Barrier(0, 2)],
        })
        assert repaired[0] == [Barrier(0, 2), Write(0)]
        assert repaired[1] == [Barrier(0, 2)]

    def test_barrier_missing_from_one_stream_dropped_everywhere(self):
        repaired = repair({
            0: [Write(0), Barrier(3, 2)],
            1: [Read(0)],
        })
        assert repaired[0] == [Write(0)]
        assert repaired[1] == [Read(0)]

    def test_generated_tapes_are_repair_fixpoints(self):
        tape = generate_tape("repair:0")
        decoded = {pid: list(decode_events(stream))
                   for pid, stream in tape.streams.items()}
        assert repair(decoded) == decoded


def _has_target_write(candidate: Tape, pid: int, addr: int) -> bool:
    return any(isinstance(event, Write) and event.addr == addr
               for event in decode_events(candidate.streams.get(pid, [])))


class TestShrink:
    def test_shrinks_to_the_single_relevant_event(self):
        """ddmin against a synthetic predicate ("stream still contains
        the marked write") reduces a full generated tape to ~1 event."""
        tape = generate_tape("shrink:0")
        pid = min(tape.streams)
        target = next(event.addr
                      for event in decode_events(tape.streams[pid])
                      if isinstance(event, Write))
        predicate = lambda t: _has_target_write(t, pid, target)
        shrunk, checks = shrink_tape(tape, predicate=predicate)
        assert predicate(shrunk)
        assert shrunk.total_events() <= 2
        assert 1 <= checks <= 400

    def test_result_streams_stay_valid(self):
        tape = generate_tape("shrink:1")
        pid = min(tape.streams)
        target = next(event.addr
                      for event in decode_events(tape.streams[pid])
                      if isinstance(event, Write))
        shrunk, _ = shrink_tape(
            tape, predicate=lambda t: _has_target_write(t, pid, target))
        # Lock balance and barrier matching survive arbitrary deletion.
        assert repair({p: list(decode_events(s))
                       for p, s in shrunk.streams.items()}) == \
            {p: list(decode_events(s)) for p, s in shrunk.streams.items()}

    def test_non_reproducing_tape_returned_unchanged(self):
        tape = generate_tape("shrink:2")
        shrunk, checks = shrink_tape(tape, predicate=lambda t: False)
        assert shrunk is tape
        assert checks == 1

    def test_check_budget_is_respected(self):
        tape = generate_tape("shrink:3")
        calls = []

        def predicate(candidate):
            calls.append(candidate)
            return True

        _, checks = shrink_tape(tape, predicate=predicate, max_checks=5)
        assert checks <= 5
        assert len(calls) <= 6  # the initial full-tape check + budget


class TestWriteRepro:
    def _divergence(self, tape):
        return TapeDivergence(
            tape=tape, kind="fast",
            base=PathResult(name="generic"), other=PathResult(name="fast"),
            detail=["stats.execution_time: 849 != 866"])

    def test_repro_file_is_self_contained(self, tmp_path):
        tape = generate_tape("repro:0")
        path = write_repro(tape, self._divergence(tape), tmp_path)
        assert path.exists()
        assert path.name.startswith("repro-fast-")
        payload = json.loads(path.read_text())
        assert payload["seed"] == tape.seed
        assert payload["events"] == tape.total_events()
        restored = tape_from_json(json.dumps(payload["tape"]))
        assert restored.streams == tape.streams
        assert not list(tmp_path.glob("*.tmp"))  # atomic write cleaned up

    def test_identical_tapes_dedupe_by_digest(self, tmp_path):
        tape = generate_tape("repro:1")
        first = write_repro(tape, self._divergence(tape), tmp_path)
        second = write_repro(tape, self._divergence(tape), tmp_path)
        assert first == second
        assert len(list(tmp_path.glob("repro-*.json"))) == 1

    def test_default_dir_honours_env_override(self, monkeypatch,
                                              tmp_path):
        monkeypatch.setenv("REPRO_REPRO_DIR", str(tmp_path / "elsewhere"))
        assert default_repro_dir() == tmp_path / "elsewhere"
