"""Integration tests for MultiprocessorSystem's access paths."""

import pytest

from repro.core.cache import MODIFIED, SHARED
from repro.core.config import KB, SystemConfig
from repro.core.system import MultiprocessorSystem


class TestDataPath:
    def test_cold_read_costs_memory_latency(self):
        system = MultiprocessorSystem(SystemConfig())
        complete = system.data_access(proc=0, addr=0x1000, is_write=False,
                                      now=0)
        assert complete == 101  # bank at 0, fetch done at 100, +1 use cycle

    def test_warm_read_is_two_cycles(self):
        system = MultiprocessorSystem(SystemConfig())
        system.data_access(0, 0x1000, False, 0)
        complete = system.data_access(0, 0x1000, False, 1000)
        assert complete == 1001

    def test_write_does_not_stall(self):
        system = MultiprocessorSystem(SystemConfig())
        complete = system.data_access(0, 0x1000, True, 0)
        assert complete == 1

    def test_processors_route_to_their_own_cluster(self):
        config = SystemConfig(clusters=2, processors_per_cluster=2)
        system = MultiprocessorSystem(config)
        system.data_access(0, 0x1000, False, 0)   # cluster 0
        system.data_access(2, 0x1000, False, 0)   # cluster 1
        assert system.clusters[0].scc.stats.reads == 1
        assert system.clusters[1].scc.stats.reads == 1

    def test_cluster_mates_share_the_cache(self):
        """The prefetching effect of Section 3.1.1: processor 1 hits on a
        line processor 0 fetched."""
        config = SystemConfig(clusters=1, processors_per_cluster=2)
        system = MultiprocessorSystem(config)
        system.data_access(0, 0x1000, False, 0)
        complete = system.data_access(1, 0x1000, False, 500)
        assert complete == 501
        assert system.clusters[0].scc.stats.read_misses == 1

    def test_bank_conflict_between_cluster_mates(self):
        config = SystemConfig(clusters=1, processors_per_cluster=2)
        system = MultiprocessorSystem(config)
        system.data_access(0, 0x1000, False, 0)
        system.data_access(1, 0x1000, False, 1000)  # warm it
        # Same line, same cycle: second access waits one bank cycle.
        first = system.data_access(0, 0x1000, False, 2000)
        second = system.data_access(1, 0x1000, False, 2000)
        assert first == 2001
        assert second == 2002
        assert system.clusters[0].scc.stats.bank_conflict_cycles == 1

    def test_different_banks_no_conflict(self):
        config = SystemConfig(clusters=1, processors_per_cluster=2)
        system = MultiprocessorSystem(config)
        line = config.line_size
        system.data_access(0, 0, False, 0)
        system.data_access(1, line, False, 0)
        assert system.clusters[0].scc.stats.bank_conflict_cycles == 0

    def test_cross_cluster_invalidation(self):
        config = SystemConfig(clusters=2, processors_per_cluster=1)
        system = MultiprocessorSystem(config)
        system.data_access(0, 0x40, False, 0)
        system.data_access(1, 0x40, True, 500)
        stats = system.stats(1000)
        assert stats.total_invalidations == 1
        assert system.clusters[0].scc.array.state(config.line_of(0x40)) == 0

    def test_invariant_checker_passes_after_traffic(self):
        config = SystemConfig(clusters=4, processors_per_cluster=2,
                              scc_size=4 * KB)
        system = MultiprocessorSystem(config)
        for step in range(200):
            proc = step % config.total_processors
            system.data_access(proc, (step * 48) % 8192, step % 3 == 0,
                               step * 10)
        system.check_invariants()


class TestIfetchPath:
    def test_ifetch_without_icache_model_costs_count(self):
        system = MultiprocessorSystem(SystemConfig(model_icache=False))
        assert system.ifetch(0, 0x400, 8, now=10) == 18

    def test_ifetch_with_icache_model_pays_misses(self):
        config = SystemConfig(model_icache=True)
        system = MultiprocessorSystem(config)
        complete = system.ifetch(0, 0, 8, now=0)  # 8 instrs, one 32 B line
        assert complete == 8 + config.icache_miss_latency

    def test_warm_icache_fetch_is_free_of_stall(self):
        config = SystemConfig(model_icache=True)
        system = MultiprocessorSystem(config)
        system.ifetch(0, 0, 8, 0)
        assert system.ifetch(0, 0, 8, 1000) == 1008

    def test_icaches_are_private_per_processor(self):
        config = SystemConfig(clusters=1, processors_per_cluster=2,
                              model_icache=True)
        system = MultiprocessorSystem(config)
        system.ifetch(0, 0, 8, 0)
        complete = system.ifetch(1, 0, 8, 1000)  # proc 1 misses anyway
        assert complete == 1008 + config.icache_miss_latency


class TestAccounting:
    def test_reference_splits_busy_and_stall(self):
        system = MultiprocessorSystem(SystemConfig())
        system.data_access(0, 0x1000, False, 0)  # miss: 101 cycles total
        stats = system.stats(101)
        proc = stats.processors[0]
        assert proc.busy_cycles == 1
        assert proc.memory_stall_cycles == 100
        assert proc.references == 1

    def test_compute_and_sync_accounting(self):
        system = MultiprocessorSystem(SystemConfig())
        system.account_compute(0, 50)
        system.account_sync(0, 25)
        stats = system.stats(75)
        assert stats.processors[0].busy_cycles == 50
        assert stats.processors[0].sync_stall_cycles == 25
        assert stats.processors[0].total_cycles == 75

    def test_stats_aggregate_scc_counters(self):
        config = SystemConfig(clusters=2)
        system = MultiprocessorSystem(config)
        system.data_access(0, 0x40, False, 0)
        system.data_access(1, 0x80, False, 0)
        stats = system.stats(500)
        assert stats.total_scc.reads == 2
        assert stats.total_scc.read_misses == 2
        assert stats.read_miss_rate == 1.0
