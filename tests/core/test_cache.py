"""Unit and property tests for the direct-mapped MSI tag array."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import (INVALID, MODIFIED, SHARED, DirectMappedArray)


class TestBasics:
    def test_empty_cache_misses_everything(self):
        array = DirectMappedArray(64)
        assert array.state(0) == INVALID
        assert array.state(63) == INVALID
        assert array.state(64) == INVALID
        assert array.valid_count() == 0

    def test_install_then_hit(self):
        array = DirectMappedArray(64)
        assert array.install(5, SHARED) is None
        assert array.state(5) == SHARED
        assert array.contains(5)

    def test_rejects_invalid_install_state(self):
        array = DirectMappedArray(64)
        with pytest.raises(ValueError):
            array.install(5, INVALID)

    def test_rejects_empty_cache(self):
        with pytest.raises(ValueError):
            DirectMappedArray(0)

    def test_conflicting_line_evicts(self):
        array = DirectMappedArray(64)
        array.install(5, MODIFIED)
        victim = array.install(69, SHARED)  # 69 = 5 + 64: same index
        assert victim == (5, MODIFIED)
        assert array.state(5) == INVALID
        assert array.state(69) == SHARED

    def test_reinstall_same_line_updates_state_without_victim(self):
        array = DirectMappedArray(64)
        array.install(5, SHARED)
        assert array.install(5, MODIFIED) is None
        assert array.state(5) == MODIFIED

    def test_invalidate_resident(self):
        array = DirectMappedArray(64)
        array.install(5, SHARED)
        assert array.invalidate(5)
        assert array.state(5) == INVALID

    def test_invalidate_absent_is_noop(self):
        array = DirectMappedArray(64)
        assert not array.invalidate(5)

    def test_invalidate_checks_tag_not_just_index(self):
        array = DirectMappedArray(64)
        array.install(5, SHARED)
        assert not array.invalidate(69)  # same index, different tag
        assert array.state(5) == SHARED

    def test_set_state_requires_residency(self):
        array = DirectMappedArray(64)
        with pytest.raises(KeyError):
            array.set_state(5, SHARED)

    def test_set_state_transitions(self):
        array = DirectMappedArray(64)
        array.install(5, SHARED)
        array.set_state(5, MODIFIED)
        assert array.state(5) == MODIFIED
        array.set_state(5, INVALID)
        assert array.state(5) == INVALID

    def test_set_state_rejects_unknown_state(self):
        array = DirectMappedArray(64)
        array.install(5, SHARED)
        with pytest.raises(ValueError):
            array.set_state(5, 7)

    def test_resident_lines_reports_global_line_numbers(self):
        array = DirectMappedArray(64)
        array.install(69, SHARED)
        array.install(3, MODIFIED)
        assert sorted(array.resident_lines()) == [(3, MODIFIED), (69, SHARED)]


@st.composite
def _operations(draw):
    ops = draw(st.lists(
        st.tuples(st.sampled_from(["install_s", "install_m", "invalidate"]),
                  st.integers(min_value=0, max_value=255)),
        min_size=1, max_size=200))
    return ops


class TestProperties:
    @given(_operations())
    @settings(max_examples=200)
    def test_direct_mapping_invariant(self, ops):
        """After any operation sequence: each resident line sits at its own
        index, at most one line per index, and valid_count matches."""
        array = DirectMappedArray(32)
        shadow = {}  # index -> (line, state)
        for op, line in ops:
            if op == "install_s":
                array.install(line, SHARED)
                shadow[line % 32] = (line, SHARED)
            elif op == "install_m":
                array.install(line, MODIFIED)
                shadow[line % 32] = (line, MODIFIED)
            else:
                array.invalidate(line)
                held = shadow.get(line % 32)
                if held and held[0] == line:
                    del shadow[line % 32]
        resident = dict()
        for line, state in array.resident_lines():
            assert array.index_of(line) not in resident
            resident[array.index_of(line)] = (line, state)
        assert resident == shadow
        assert array.valid_count() == len(shadow)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_index_tag_roundtrip(self, line):
        array = DirectMappedArray(128)
        assert array.tag_of(line) * 128 + array.index_of(line) == line
