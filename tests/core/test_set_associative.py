"""Unit and property tests for the set-associative LRU tag array."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import (INVALID, MODIFIED, SHARED,
                              DirectMappedArray, SetAssociativeArray,
                              make_array)


class TestBasics:
    def test_geometry(self):
        array = SetAssociativeArray(64, associativity=4)
        assert array.num_sets == 16
        assert array.index_of(17) == 1

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeArray(0, 1)
        with pytest.raises(ValueError):
            SetAssociativeArray(64, 5)
        with pytest.raises(ValueError):
            SetAssociativeArray(64, 0)

    def test_install_then_hit(self):
        array = SetAssociativeArray(64, 2)
        assert array.install(5, SHARED) is None
        assert array.state(5) == SHARED

    def test_conflicting_lines_coexist_up_to_ways(self):
        array = SetAssociativeArray(64, 2)   # 32 sets
        array.install(5, SHARED)
        assert array.install(5 + 32, SHARED) is None   # same set, way 2
        assert array.state(5) == SHARED
        assert array.state(5 + 32) == SHARED

    def test_lru_eviction(self):
        array = SetAssociativeArray(64, 2)
        array.install(5, SHARED)
        array.install(37, SHARED)         # set now full (5 older)
        victim = array.install(69, SHARED)
        assert victim == (5, SHARED)

    def test_touch_protects_from_eviction(self):
        array = SetAssociativeArray(64, 2)
        array.install(5, SHARED)
        array.install(37, SHARED)
        array.touch(5)                    # 37 becomes LRU
        victim = array.install(69, SHARED)
        assert victim == (37, SHARED)

    def test_reinstall_updates_state_without_victim(self):
        array = SetAssociativeArray(64, 2)
        array.install(5, SHARED)
        assert array.install(5, MODIFIED) is None
        assert array.state(5) == MODIFIED

    def test_invalidate_frees_the_way(self):
        array = SetAssociativeArray(64, 2)
        array.install(5, SHARED)
        array.install(37, SHARED)
        assert array.invalidate(5)
        assert array.install(69, SHARED) is None   # no eviction needed

    def test_set_state_and_errors(self):
        array = SetAssociativeArray(64, 2)
        array.install(5, SHARED)
        array.set_state(5, MODIFIED)
        assert array.state(5) == MODIFIED
        array.set_state(5, INVALID)
        assert array.state(5) == INVALID
        with pytest.raises(KeyError):
            array.set_state(7, SHARED)
        array.install(9, SHARED)
        with pytest.raises(ValueError):
            array.set_state(9, 42)
        with pytest.raises(ValueError):
            array.install(9, INVALID)


class TestFactory:
    def test_direct_mapped_for_one_way(self):
        assert isinstance(make_array(64, 1), DirectMappedArray)

    def test_set_associative_otherwise(self):
        assert isinstance(make_array(64, 2), SetAssociativeArray)


class TestProperties:
    @given(st.lists(st.tuples(
        st.sampled_from(["install_s", "install_m", "invalidate", "touch"]),
        st.integers(0, 200)), min_size=1, max_size=300))
    @settings(max_examples=150)
    def test_never_exceeds_capacity_and_matches_reference(self, ops):
        """Fully associative LRU shadow model per set."""
        array = SetAssociativeArray(16, 4)   # 4 sets x 4 ways
        shadow = {s: [] for s in range(4)}   # set -> [(line, state)] MRU..
        for op, line in ops:
            bucket = shadow[line % 4]
            held = next((e for e in bucket if e[0] == line), None)
            if op == "touch":
                array.touch(line)
                if held:
                    bucket.remove(held)
                    bucket.insert(0, held)
            elif op == "invalidate":
                array.invalidate(line)
                if held:
                    bucket.remove(held)
            else:
                state = SHARED if op == "install_s" else MODIFIED
                array.install(line, state)
                if held:
                    bucket.remove(held)
                bucket.insert(0, [line, state])
                if len(bucket) > 4:
                    bucket.pop()
        for s in range(4):
            assert len(shadow[s]) <= 4
        expected = sorted((line, state)
                          for bucket in shadow.values()
                          for line, state in bucket)
        assert sorted(array.resident_lines()) == expected
        assert array.valid_count() == len(expected)

    @given(st.integers(1, 4).map(lambda k: 2 ** k))
    def test_full_associativity_never_evicts_under_capacity(self, ways):
        array = SetAssociativeArray(4 * ways, ways)
        for line in range(4 * ways):
            assert array.install(line, SHARED) is None
        assert array.valid_count() == 4 * ways
