"""Unit and property tests for bank arbitration and write buffers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.interconnect import BankInterconnect


class TestBankArbitration:
    def test_free_bank_starts_immediately(self):
        icn = BankInterconnect(num_banks=8)
        start, wait = icn.access(3, now=100)
        assert (start, wait) == (100, 0)

    def test_same_bank_same_cycle_serializes(self):
        """Two processors hitting one bank in the same cycle: the second
        waits one bank cycle (Section 2.2.2's bank contention)."""
        icn = BankInterconnect(num_banks=8)
        first_start, first_wait = icn.access(0, now=100)
        second_start, second_wait = icn.access(0, now=100)
        assert (first_start, first_wait) == (100, 0)
        assert (second_start, second_wait) == (101, 1)

    def test_different_banks_do_not_conflict(self):
        icn = BankInterconnect(num_banks=8)
        icn.access(0, now=100)
        start, wait = icn.access(1, now=100)
        assert wait == 0
        assert start == 100

    def test_conflict_cycles_accumulate(self):
        icn = BankInterconnect(num_banks=2)
        for _ in range(4):
            icn.access(0, now=0)
        assert icn.conflict_cycles == 0 + 1 + 2 + 3

    def test_slow_banks(self):
        icn = BankInterconnect(num_banks=1, bank_cycle_time=3)
        icn.access(0, now=0)
        start, wait = icn.access(0, now=0)
        assert (start, wait) == (3, 3)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BankInterconnect(num_banks=0)
        with pytest.raises(ValueError):
            BankInterconnect(num_banks=1, bank_cycle_time=0)
        with pytest.raises(ValueError):
            BankInterconnect(num_banks=1, write_buffer_depth=0)


class TestWriteBuffer:
    def test_writes_below_depth_do_not_stall(self):
        icn = BankInterconnect(num_banks=1, write_buffer_depth=2)
        assert icn.reserve_write_slot(0, now=0, retire_time=100) == 0
        assert icn.reserve_write_slot(0, now=0, retire_time=100) == 0
        assert icn.pending_writes(0, now=0) == 2

    def test_full_buffer_stalls_until_oldest_retires(self):
        icn = BankInterconnect(num_banks=1, write_buffer_depth=2)
        icn.reserve_write_slot(0, now=0, retire_time=50)
        icn.reserve_write_slot(0, now=0, retire_time=100)
        stall = icn.reserve_write_slot(0, now=10, retire_time=150)
        assert stall == 40  # waits for the retire at 50
        assert icn.write_stall_cycles == 40

    def test_retired_entries_free_slots(self):
        icn = BankInterconnect(num_banks=1, write_buffer_depth=1)
        icn.reserve_write_slot(0, now=0, retire_time=50)
        assert icn.reserve_write_slot(0, now=60, retire_time=70) == 0

    def test_hit_writes_retire_immediately(self):
        icn = BankInterconnect(num_banks=1, write_buffer_depth=1)
        icn.reserve_write_slot(0, now=0, retire_time=1)
        assert icn.reserve_write_slot(0, now=5, retire_time=6) == 0

    def test_buffers_are_per_bank(self):
        icn = BankInterconnect(num_banks=2, write_buffer_depth=1)
        icn.reserve_write_slot(0, now=0, retire_time=1000)
        assert icn.reserve_write_slot(1, now=0, retire_time=1000) == 0


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 500)),
                    min_size=1, max_size=100))
    @settings(max_examples=150)
    def test_bank_occupancy_never_overlaps(self, accesses):
        """Per bank, access start times are spaced >= bank_cycle_time
        apart, for any (bank, time) request sequence with monotone time."""
        icn = BankInterconnect(num_banks=4, bank_cycle_time=2)
        accesses.sort(key=lambda pair: pair[1])
        last_start = {}
        for bank, now in accesses:
            start, wait = icn.access(bank, now)
            assert start >= now
            assert wait == start - now
            if bank in last_start:
                assert start - last_start[bank] >= 2
            last_start[bank] = start

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=60))
    def test_write_buffer_never_exceeds_depth(self, retire_offsets):
        icn = BankInterconnect(num_banks=1, write_buffer_depth=3)
        now = 0
        for offset in retire_offsets:
            stall = icn.reserve_write_slot(0, now, now + offset)
            now += stall + 1
            assert icn.pending_writes(0, now) <= 3
