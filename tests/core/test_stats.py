"""Unit tests for the statistics containers."""

import pytest

from repro.core.stats import ProcessorStats, SccStats, SystemStats


class TestSccStats:
    def test_rates_handle_idle_caches(self):
        stats = SccStats()
        assert stats.read_miss_rate == 0.0
        assert stats.write_miss_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_rates(self):
        stats = SccStats(reads=100, read_misses=10, writes=50,
                         write_misses=25)
        assert stats.read_miss_rate == pytest.approx(0.10)
        assert stats.write_miss_rate == pytest.approx(0.50)
        assert stats.miss_rate == pytest.approx(35 / 150)
        assert stats.accesses == 150

    def test_merge_sums_every_counter(self):
        first = SccStats(reads=10, read_misses=1, invalidations_sent=3)
        second = SccStats(reads=5, writebacks=2, invalidations_sent=4)
        merged = first.merge(second)
        assert merged.reads == 15
        assert merged.read_misses == 1
        assert merged.invalidations_sent == 7
        assert merged.writebacks == 2
        # Operands untouched.
        assert first.reads == 10

    def test_as_dict_roundtrips_every_field(self):
        stats = SccStats(reads=7)
        data = stats.as_dict()
        assert data["reads"] == 7
        assert set(data) == set(vars(SccStats()))


class TestSystemStats:
    def test_total_scc_aggregates(self):
        stats = SystemStats(scc=[SccStats(reads=10, read_misses=5),
                                 SccStats(reads=30, read_misses=3)])
        assert stats.total_scc.reads == 40
        assert stats.read_miss_rate == pytest.approx(8 / 40)

    def test_total_invalidations(self):
        stats = SystemStats(scc=[SccStats(invalidations_received=4),
                                 SccStats(invalidations_received=6)])
        assert stats.total_invalidations == 10

    def test_as_dict_shape(self):
        stats = SystemStats(scc=[SccStats()],
                            processors=[ProcessorStats()],
                            execution_time=42)
        data = stats.as_dict()
        assert data["execution_time"] == 42
        assert len(data["scc"]) == 1
        assert len(data["processors"]) == 1
