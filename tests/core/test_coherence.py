"""Unit and property tests for the snoopy write-invalidate protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bus import SnoopyBus
from repro.core.cache import EXCLUSIVE, INVALID, MODIFIED, SHARED
from repro.core.coherence import CoherenceController
from repro.core.config import KB, SystemConfig
from repro.core.scc import SharedClusterCache


def make_controller(clusters=4, scc_size=4 * KB, **overrides):
    config = SystemConfig(clusters=clusters, scc_size=scc_size, **overrides)
    sccs = [SharedClusterCache(config, c) for c in range(clusters)]
    bus = SnoopyBus()
    return config, sccs, CoherenceController(config, sccs, bus)


class TestReads:
    def test_cold_read_misses_and_installs_shared(self):
        config, sccs, ctrl = make_controller()
        outcome = ctrl.access(cluster=0, line=7, is_write=False, start=0)
        assert not outcome.hit
        assert outcome.complete == config.memory_latency + 1
        assert sccs[0].array.state(7) == SHARED
        assert sccs[0].stats.read_misses == 1

    def test_second_read_hits(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(0, 7, False, 0)
        outcome = ctrl.access(0, 7, False, 500)
        assert outcome.hit
        assert outcome.complete == 501
        assert sccs[0].stats.reads == 2
        assert sccs[0].stats.read_misses == 1

    def test_read_merging_with_inflight_fill(self):
        """A second processor reading an in-flight line waits for the fill
        instead of getting the data early -- the MSHR merge."""
        config, sccs, ctrl = make_controller()
        first = ctrl.access(0, 7, False, 0)   # fill arrives at 100
        second = ctrl.access(0, 7, False, 10)
        assert second.hit  # tag already installed; the fill is in flight
        assert second.complete == first.complete
        # After the fill lands, hits are single-cycle again.
        third = ctrl.access(0, 7, False, 200)
        assert third.complete == 201

    def test_read_downgrades_remote_modified(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(1, 7, True, 0)   # cluster 1 owns the line MODIFIED
        assert sccs[1].array.state(7) == MODIFIED
        ctrl.access(0, 7, False, 500)
        assert sccs[1].array.state(7) == SHARED
        assert sccs[0].array.state(7) == SHARED
        assert sccs[0].stats.interventions == 1

    def test_read_does_not_invalidate_remote_shared(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(1, 7, False, 0)
        ctrl.access(0, 7, False, 500)
        assert sccs[1].array.state(7) == SHARED
        assert sccs[0].array.state(7) == SHARED


class TestWrites:
    def test_cold_write_misses_and_installs_modified(self):
        _, sccs, ctrl = make_controller()
        outcome = ctrl.access(0, 7, True, 0)
        assert not outcome.hit
        assert sccs[0].array.state(7) == MODIFIED
        assert sccs[0].stats.write_misses == 1

    def test_write_miss_does_not_stall_processor(self):
        """The write buffer hides the fetch: complete is the next cycle,
        retire is when the line actually arrives."""
        config, _, ctrl = make_controller()
        outcome = ctrl.access(0, 7, True, 0)
        assert outcome.complete == 1
        assert outcome.retire == config.memory_latency

    def test_write_hit_modified_is_silent(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(0, 7, True, 0)
        bus_before = ctrl.bus.transactions
        outcome = ctrl.access(0, 7, True, 500)
        assert outcome.hit
        assert ctrl.bus.transactions == bus_before

    def test_write_to_shared_upgrades_and_invalidates(self):
        """Section 2.2.2: a write to a line present in other SCCs
        invalidates every remote copy."""
        _, sccs, ctrl = make_controller()
        for cluster in range(4):
            ctrl.access(cluster, 7, False, 0)
        outcome = ctrl.access(0, 7, True, 500)
        assert outcome.hit
        assert outcome.invalidations == 3
        assert sccs[0].array.state(7) == MODIFIED
        for cluster in (1, 2, 3):
            assert sccs[cluster].array.state(7) == INVALID
            assert sccs[cluster].stats.invalidations_received == 1
        assert sccs[0].stats.upgrades == 1
        assert sccs[0].stats.invalidations_sent == 3

    def test_write_miss_invalidates_remote_copies(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(1, 7, False, 0)
        ctrl.access(2, 7, True, 500)
        assert sccs[1].array.state(7) == INVALID
        assert sccs[2].array.state(7) == MODIFIED
        assert sccs[2].stats.invalidations_sent == 1

    def test_reread_after_invalidation_is_coherence_miss(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(1, 7, False, 0)      # cluster 1 has the line
        ctrl.access(0, 7, True, 200)     # cluster 0 steals it
        ctrl.access(1, 7, False, 400)    # cluster 1 rereads: coherence miss
        assert sccs[1].stats.coherence_read_misses == 1

    def test_cold_miss_is_not_coherence_miss(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(0, 7, False, 0)
        assert sccs[0].stats.coherence_read_misses == 0


class TestReplacement:
    def test_conflicting_line_evicts_and_counts(self):
        config, sccs, ctrl = make_controller(scc_size=4 * KB)
        lines = config.scc_lines
        ctrl.access(0, 3, False, 0)
        ctrl.access(0, 3 + lines, False, 500)  # same index, different tag
        assert sccs[0].stats.evictions == 1
        assert sccs[0].stats.writebacks == 0
        assert sccs[0].array.state(3) == INVALID

    def test_dirty_victim_writes_back(self):
        config, sccs, ctrl = make_controller(scc_size=4 * KB)
        lines = config.scc_lines
        ctrl.access(0, 3, True, 0)
        ctrl.access(0, 3 + lines, False, 500)
        assert sccs[0].stats.writebacks == 1

    def test_writeback_consumes_bus_occupancy(self):
        config, sccs, ctrl = make_controller(scc_size=4 * KB)
        lines = config.scc_lines
        before = ctrl.bus.busy_cycles
        ctrl.access(0, 3, True, 0)
        ctrl.access(0, 3 + lines, False, 500)
        # write-miss fetch + read-miss fetch + write-back
        assert ctrl.bus.busy_cycles == before + 3 * config.bus_occupancy


class TestBusContention:
    def test_concurrent_misses_from_two_clusters_serialize(self):
        config, _, ctrl = make_controller()
        first = ctrl.access(0, 1, False, 0)
        second = ctrl.access(1, 2, False, 0)
        assert second.bus_wait == config.bus_occupancy
        assert second.complete == first.complete + config.bus_occupancy


LINE_POOL = st.integers(min_value=0, max_value=600)


class TestExclusivityProperty:
    @given(st.lists(st.tuples(st.integers(0, 3), LINE_POOL, st.booleans()),
                    min_size=1, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_modified_lines_are_machine_wide_exclusive(self, accesses):
        """After any access sequence, a MODIFIED line has no other copy
        anywhere, and every SHARED line has no MODIFIED copy elsewhere."""
        _, sccs, ctrl = make_controller(scc_size=4 * KB)
        time = 0
        for cluster, line, is_write in accesses:
            ctrl.access(cluster, line, is_write, time)
            time += 7
        assert ctrl.check_exclusivity() is None

    @given(st.lists(st.tuples(st.integers(0, 3), LINE_POOL, st.booleans()),
                    min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_counters_are_consistent(self, accesses):
        _, sccs, ctrl = make_controller(scc_size=4 * KB)
        time = 0
        for cluster, line, is_write in accesses:
            ctrl.access(cluster, line, is_write, time)
            time += 7
        total_sent = sum(s.stats.invalidations_sent for s in sccs)
        total_received = sum(s.stats.invalidations_received for s in sccs)
        assert total_sent == total_received
        for scc in sccs:
            assert scc.stats.read_misses <= scc.stats.reads
            assert scc.stats.write_misses <= scc.stats.writes
            assert scc.stats.coherence_read_misses <= scc.stats.read_misses


class TestCheckExclusivityPaths:
    """check_exclusivity holds through the two transitions that move
    ownership between clusters -- and actually fires on manufactured
    violations, so the property tests above are not vacuous."""

    @given(st.integers(0, 3),
           st.lists(st.integers(0, 3), min_size=1, max_size=10),
           LINE_POOL)
    @settings(max_examples=60, deadline=None)
    def test_dirty_sharer_downgrade_path(self, writer, readers, line):
        """A remote read of a dirty line downgrades the owner; however
        the reads interleave, no MODIFIED/EXCLUSIVE copy survives one."""
        _, sccs, ctrl = make_controller()
        ctrl.access(writer, line, True, 0)
        time = 100
        for cluster in readers:
            ctrl.access(cluster, line, False, time)
            time += 100
            assert ctrl.check_exclusivity() is None
        if any(cluster != writer for cluster in readers):
            for scc in sccs:
                assert scc.array.state(line) in (INVALID, SHARED)

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=8),
           st.integers(0, 3), LINE_POOL)
    @settings(max_examples=60, deadline=None)
    def test_remote_invalidate_path(self, holders, writer, line):
        """A write over any population of SHARED copies leaves exactly
        one MODIFIED copy and every remote copy INVALID."""
        _, sccs, ctrl = make_controller()
        time = 0
        for cluster in holders:
            ctrl.access(cluster, line, False, time)
            time += 50
        ctrl.access(writer, line, True, time)
        assert ctrl.check_exclusivity() is None
        assert sccs[writer].array.state(line) == MODIFIED
        for index, scc in enumerate(sccs):
            if index != writer:
                assert scc.array.state(line) == INVALID

    def test_mesi_clean_exclusive_downgrades_on_remote_read(self):
        _, sccs, ctrl = make_controller(protocol="mesi")
        ctrl.access(0, 7, False, 0)
        assert sccs[0].array.state(7) == EXCLUSIVE
        ctrl.access(1, 7, False, 100)
        assert sccs[0].array.state(7) == SHARED
        assert sccs[1].array.state(7) == SHARED
        assert ctrl.check_exclusivity() is None

    @given(st.integers(0, 3), st.integers(0, 3), LINE_POOL)
    @settings(max_examples=40, deadline=None)
    def test_manufactured_double_owner_is_detected(self, first, second,
                                                   line):
        _, sccs, ctrl = make_controller()
        ctrl.access(first, line, True, 0)
        if second == first:
            assert ctrl.check_exclusivity() is None
        else:
            sccs[second].array.install(line, MODIFIED)
            assert ctrl.check_exclusivity() == line

    def test_dirty_copy_beside_shared_copy_is_detected(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(0, 7, True, 0)
        sccs[1].array.install(7, SHARED)
        assert ctrl.check_exclusivity() == 7
