"""Tests for the DASH-style directory coherence transport."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import INVALID, MODIFIED, SHARED
from repro.core.config import KB, SystemConfig
from repro.core.directory import DirectoryController
from repro.core.scc import SharedClusterCache
from repro.core.system import MultiprocessorSystem
from repro.simulation import run_simulation
from repro.workloads import BarnesHut


def make_controller(clusters=4, **overrides):
    config = SystemConfig(clusters=clusters, scc_size=4 * KB,
                          inter_cluster="directory", **overrides)
    sccs = [SharedClusterCache(config, c) for c in range(clusters)]
    return config, sccs, DirectoryController(config, sccs)


class TestReads:
    def test_clean_miss_is_two_hop(self):
        config, sccs, ctrl = make_controller()
        outcome = ctrl.access(0, 7, False, 0)
        assert not outcome.hit
        assert outcome.complete == config.memory_latency + 1
        assert sccs[0].array.state(7) == SHARED
        assert ctrl.entries[7].sharers == {0}

    def test_dirty_remote_miss_is_three_hop(self):
        config, sccs, ctrl = make_controller()
        ctrl.access(1, 7, True, 0)
        outcome = ctrl.access(0, 7, False, 500)
        assert outcome.complete == 500 + config.remote_dirty_latency + 1
        assert sccs[1].array.state(7) == SHARED
        assert ctrl.entries[7].sharers == {0, 1}
        assert ctrl.entries[7].owner is None
        assert sccs[0].stats.interventions == 1

    def test_hits_stay_local(self):
        _, _, ctrl = make_controller()
        ctrl.access(0, 7, False, 0)
        messages_before = ctrl.messages
        outcome = ctrl.access(0, 7, False, 500)
        assert outcome.hit
        assert ctrl.messages == messages_before


class TestWrites:
    def test_write_miss_takes_ownership(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(2, 7, True, 0)
        assert sccs[2].array.state(7) == MODIFIED
        assert ctrl.entries[7].owner == 2
        assert ctrl.entries[7].sharers == {2}

    def test_upgrade_invalidates_exactly_the_sharers(self):
        _, sccs, ctrl = make_controller()
        for cluster in (0, 1, 2):
            ctrl.access(cluster, 7, False, cluster * 200)
        outcome = ctrl.access(0, 7, True, 1000)
        assert outcome.invalidations == 2
        assert sccs[1].array.state(7) == INVALID
        assert sccs[2].array.state(7) == INVALID
        assert ctrl.entries[7].owner == 0

    def test_write_to_remote_dirty_line_steals_ownership(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(1, 7, True, 0)
        ctrl.access(0, 7, True, 500)
        assert sccs[1].array.state(7) == INVALID
        assert sccs[0].array.state(7) == MODIFIED
        assert ctrl.entries[7].owner == 0


class TestBankContention:
    def test_same_home_bank_serializes(self):
        config, _, ctrl = make_controller(directory_banks=1)
        first = ctrl.access(0, 1, False, 0)
        second = ctrl.access(1, 2, False, 0)
        assert second.bus_wait == config.directory_occupancy

    def test_different_banks_proceed_in_parallel(self):
        """The point of the directory: no machine-wide serialization."""
        _, _, ctrl = make_controller(directory_banks=8)
        first = ctrl.access(0, 1, False, 0)
        second = ctrl.access(1, 2, False, 0)
        assert second.bus_wait == 0
        assert second.complete == first.complete


class TestEviction:
    def test_replacement_hint_removes_sharer(self):
        config, sccs, ctrl = make_controller()
        lines = config.scc_lines
        ctrl.access(0, 3, False, 0)
        ctrl.access(0, 3 + lines, False, 500)   # evicts line 3
        assert 0 not in ctrl.entries[3].sharers

    def test_dirty_eviction_clears_ownership(self):
        config, sccs, ctrl = make_controller()
        lines = config.scc_lines
        ctrl.access(0, 3, True, 0)
        ctrl.access(0, 3 + lines, False, 500)
        assert ctrl.entries[3].owner is None
        assert sccs[0].stats.writebacks == 1


class TestConsistencyProperty:
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 500),
                              st.booleans()),
                    min_size=1, max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_directory_mirrors_the_caches(self, accesses):
        _, _, ctrl = make_controller()
        time = 0
        for cluster, line, is_write in accesses:
            ctrl.access(cluster, line, is_write, time)
            time += 7
        ctrl.check_consistency()


class TestEndToEnd:
    def test_real_workload_stays_consistent(self):
        config = SystemConfig.paper_parallel(2, 4 * KB).with_updates(
            inter_cluster="directory")
        result = run_simulation(config, BarnesHut(n_bodies=64, steps=1),
                                check_invariants=True)
        assert result.execution_time > 0

    def test_system_builds_the_right_controller(self):
        config = SystemConfig(inter_cluster="directory")
        system = MultiprocessorSystem(config)
        assert isinstance(system.coherence, DirectoryController)
