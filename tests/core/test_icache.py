"""Unit tests for the per-processor instruction cache."""

import pytest

from repro.core.config import KB, SystemConfig
from repro.core.icache import INSTRUCTION_BYTES, InstructionCache


def make_icache(size=16 * KB, line=32):
    config = SystemConfig(icache_size=size, icache_line_size=line)
    return InstructionCache(config)


class TestInstructionCache:
    def test_cold_fetch_misses_per_line(self):
        icache = make_icache()
        # 16 instructions = 64 bytes = 2 lines of 32 B.
        assert icache.fetch(0, 16) == 2
        assert icache.misses == 2
        assert icache.fetch_lines == 2

    def test_warm_fetch_hits(self):
        icache = make_icache()
        icache.fetch(0, 16)
        assert icache.fetch(0, 16) == 0

    def test_straddling_fetch_counts_both_lines(self):
        icache = make_icache()
        # 4 instructions starting 8 bytes before a line boundary.
        assert icache.fetch(24, 4) == 2

    def test_capacity_eviction(self):
        icache = make_icache(size=1 * KB, line=32)   # 32 lines
        for block in range(64):                      # touch 64 lines
            icache.fetch(block * 32, 8)
        # Re-fetching the first line misses again: it was evicted.
        assert icache.fetch(0, 8) == 1

    def test_rejects_zero_count(self):
        icache = make_icache()
        with pytest.raises(ValueError):
            icache.fetch(0, 0)

    def test_instruction_size_constant(self):
        assert INSTRUCTION_BYTES == 4
