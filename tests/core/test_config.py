"""Unit tests for SystemConfig geometry and validation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.config import KB, SystemConfig


class TestValidation:
    def test_default_config_is_the_paper_base(self):
        config = SystemConfig()
        assert config.clusters == 4
        assert config.line_size == 16
        assert config.memory_latency == 100
        assert config.banks_per_processor == 4

    def test_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            SystemConfig(clusters=0)

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            SystemConfig(processors_per_cluster=0)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            SystemConfig(line_size=24)

    def test_rejects_non_power_of_two_scc(self):
        with pytest.raises(ValueError):
            SystemConfig(scc_size=3 * KB)

    def test_rejects_more_banks_than_lines(self):
        # 512 B SCC = 32 lines; 8 processors x 4 banks = 32 banks is fine,
        # but 16 processors x 4 = 64 banks is not.
        SystemConfig(scc_size=512, processors_per_cluster=8)
        with pytest.raises(ValueError):
            SystemConfig(scc_size=512, processors_per_cluster=16)

    def test_rejects_bus_occupancy_above_latency(self):
        with pytest.raises(ValueError):
            SystemConfig(memory_latency=50, bus_occupancy=51)

    def test_with_updates_revalidates(self):
        config = SystemConfig()
        with pytest.raises(ValueError):
            config.with_updates(line_size=10)

    def test_with_updates_returns_new_instance(self):
        config = SystemConfig()
        bigger = config.with_updates(scc_size=128 * KB)
        assert bigger.scc_size == 128 * KB
        assert config.scc_size == 64 * KB


class TestGeometry:
    def test_total_processors(self):
        config = SystemConfig(clusters=4, processors_per_cluster=8)
        assert config.total_processors == 32

    def test_num_banks_is_four_per_processor(self):
        config = SystemConfig(processors_per_cluster=2)
        assert config.num_banks == 8

    def test_scc_lines(self):
        config = SystemConfig(scc_size=4 * KB, line_size=16)
        assert config.scc_lines == 256

    def test_line_of_strips_offset(self):
        config = SystemConfig()
        assert config.line_of(0x0) == 0
        assert config.line_of(0xF) == 0
        assert config.line_of(0x10) == 1

    def test_banks_interleave_on_consecutive_lines(self):
        """Section 2.1: consecutive cache lines live in consecutive banks."""
        config = SystemConfig(processors_per_cluster=2)  # 8 banks
        banks = [config.bank_of(line * config.line_size)
                 for line in range(16)]
        assert banks == [0, 1, 2, 3, 4, 5, 6, 7] * 2

    def test_cluster_assignment_is_contiguous(self):
        config = SystemConfig(clusters=4, processors_per_cluster=2)
        assert [config.cluster_of(p) for p in range(8)] == \
            [0, 0, 1, 1, 2, 2, 3, 3]

    def test_port_assignment(self):
        config = SystemConfig(clusters=2, processors_per_cluster=4)
        assert [config.port_of(p) for p in range(8)] == \
            [0, 1, 2, 3, 0, 1, 2, 3]

    def test_cluster_of_rejects_bad_ids(self):
        config = SystemConfig(clusters=2, processors_per_cluster=2)
        with pytest.raises(ValueError):
            config.cluster_of(4)
        with pytest.raises(ValueError):
            config.cluster_of(-1)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_every_address_maps_to_a_valid_bank(self, addr):
        config = SystemConfig(processors_per_cluster=4)
        assert 0 <= config.bank_of(addr) < config.num_banks

    @given(procs=st.sampled_from([1, 2, 4, 8]),
           size_kb=st.sampled_from([4, 8, 16, 32, 64, 128, 256, 512]))
    def test_paper_design_space_is_constructible(self, procs, size_kb):
        config = SystemConfig.paper_parallel(procs, size_kb * KB)
        assert config.clusters == 4
        assert config.lines_per_bank * config.num_banks == config.scc_lines


class TestPresets:
    def test_multiprogramming_preset_is_single_cluster(self):
        config = SystemConfig.paper_multiprogramming(4, 64 * KB)
        assert config.clusters == 1
        assert config.model_icache

    def test_paper_ladder_unscaled(self):
        ladder = SystemConfig.paper_scc_ladder()
        assert ladder == tuple(k * KB for k in (4, 8, 16, 32, 64, 128, 256, 512))

    def test_paper_ladder_scaled(self):
        ladder = SystemConfig.paper_scc_ladder(scale=8)
        assert ladder[0] == 512
        assert ladder[-1] == 64 * KB

    def test_paper_ladder_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            SystemConfig.paper_scc_ladder(scale=3)
