"""Unit and property tests for the snoopy bus model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bus import SnoopyBus


class TestBus:
    def test_idle_bus_grants_immediately(self):
        bus = SnoopyBus()
        tx = bus.acquire(now=10, occupancy=20, latency=100)
        assert tx.start == 10
        assert tx.wait == 0
        assert tx.done == 110

    def test_back_to_back_transactions_queue(self):
        bus = SnoopyBus()
        first = bus.acquire(0, 20, 100)
        second = bus.acquire(5, 20, 100)
        assert first.start == 0
        assert second.start == 20  # waits for first's occupancy
        assert second.wait == 15
        assert second.done == 120

    def test_gap_leaves_bus_idle(self):
        bus = SnoopyBus()
        bus.acquire(0, 20, 100)
        tx = bus.acquire(50, 20, 100)
        assert tx.wait == 0
        assert tx.start == 50

    def test_zero_occupancy_transaction_does_not_hold_bus(self):
        bus = SnoopyBus()
        bus.acquire(0, 0, 100)
        tx = bus.acquire(0, 20, 100)
        assert tx.wait == 0

    def test_rejects_negative_parameters(self):
        bus = SnoopyBus()
        with pytest.raises(ValueError):
            bus.acquire(0, -1, 100)
        with pytest.raises(ValueError):
            bus.acquire(0, 1, -1)

    def test_counters(self):
        bus = SnoopyBus()
        bus.acquire(0, 20, 100)
        bus.acquire(0, 4, 4)
        assert bus.transactions == 2
        assert bus.busy_cycles == 24

    def test_utilization(self):
        bus = SnoopyBus()
        bus.acquire(0, 50, 100)
        assert bus.utilization(100) == pytest.approx(0.5)
        assert bus.utilization(0) == 0.0


class TestBusProperties:
    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 50)),
                    min_size=1, max_size=50))
    @settings(max_examples=200)
    def test_occupancies_never_overlap(self, requests):
        """For monotone request times, grants are FCFS and occupancy
        intervals never overlap."""
        bus = SnoopyBus()
        requests.sort(key=lambda pair: pair[0])
        previous_end = 0
        for now, occupancy in requests:
            tx = bus.acquire(now, occupancy, 100)
            assert tx.start >= now
            assert tx.start >= previous_end
            previous_end = tx.start + occupancy

    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 50)),
                    min_size=1, max_size=50))
    def test_done_time_is_start_plus_latency(self, requests):
        bus = SnoopyBus()
        for now, occupancy in requests:
            tx = bus.acquire(now, occupancy, 100)
            assert tx.done == tx.start + 100
            assert tx.wait == tx.start - now
