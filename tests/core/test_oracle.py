"""Oracle cross-check: the full simulator, reduced to one processor and
one cluster, must behave exactly like a classic direct-mapped cache
simulation (DESIGN.md's promised invariant).

The reference model is an independent ~20-line simulator; any
divergence in hit/miss classification between it and the production
coherence machinery is a bug in one of them.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import KB, SystemConfig
from repro.core.system import MultiprocessorSystem


class ReferenceCache:
    """Textbook direct-mapped write-allocate cache."""

    def __init__(self, num_lines):
        self.num_lines = num_lines
        self.tags = {}
        self.reads = self.read_misses = 0
        self.writes = self.write_misses = 0

    def access(self, line, is_write):
        index = line % self.num_lines
        hit = self.tags.get(index) == line
        if is_write:
            self.writes += 1
            self.write_misses += 0 if hit else 1
        else:
            self.reads += 1
            self.read_misses += 0 if hit else 1
        self.tags[index] = line
        return hit


def drive_both(accesses, scc_size=1 * KB):
    config = SystemConfig(clusters=1, processors_per_cluster=1,
                          scc_size=scc_size)
    system = MultiprocessorSystem(config)
    reference = ReferenceCache(config.scc_lines)
    now = 0
    for line, is_write in accesses:
        system.data_access(0, line * config.line_size, is_write, now)
        reference.access(line, is_write)
        now += 200   # far apart: no overlapping fills
    return system.clusters[0].scc.stats, reference


class TestOracle:
    def test_simple_sequence(self):
        stats, reference = drive_both(
            [(0, False), (0, False), (64, False), (0, False),
             (5, True), (5, True)])
        assert stats.read_misses == reference.read_misses
        assert stats.write_misses == reference.write_misses

    @given(st.lists(st.tuples(st.integers(0, 255), st.booleans()),
                    min_size=1, max_size=400))
    @settings(max_examples=120, deadline=None)
    def test_any_single_processor_trace_matches_the_oracle(self, accesses):
        stats, reference = drive_both(accesses)
        assert stats.reads == reference.reads
        assert stats.writes == reference.writes
        assert stats.read_misses == reference.read_misses
        assert stats.write_misses == reference.write_misses
        # And with a single cluster there is never coherence traffic
        # (upgrades may still occur locally: SHARED -> MODIFIED on a
        # write hit, but they invalidate nothing).
        assert stats.invalidations_received == 0

    @given(st.lists(st.tuples(st.integers(0, 127), st.booleans()),
                    min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_single_cluster_never_invalidates(self, accesses):
        stats, _ = drive_both(accesses, scc_size=1 * KB)
        assert stats.invalidations_received == 0
        assert stats.invalidations_sent == 0
        assert stats.interventions == 0
