"""Regression tests for in-flight fill tracking across invalidations.

A remote invalidation must always drop the victim cluster's in-flight
fill entry for the line, even when the tag array no longer holds the
copy (a conflicting install may have displaced it between the fill and
the invalidation).  A stale ``fill_ready_time`` surviving that window
would satisfy a later miss to a *different* tag mapping to the same
line with a bogus ready time."""

import pytest

from repro.core.bus import SnoopyBus
from repro.core.coherence import CoherenceController
from repro.core.config import KB, SystemConfig
from repro.core.directory import DirectoryController
from repro.core.scc import SharedClusterCache
from repro.core.system import MultiprocessorSystem


def make_controller(clusters=2, **overrides):
    config = SystemConfig(clusters=clusters, scc_size=4 * KB, **overrides)
    sccs = [SharedClusterCache(config, c) for c in range(clusters)]
    return config, sccs, CoherenceController(config, sccs, SnoopyBus())


class TestInflightTracking:
    def test_fill_is_tracked_then_expires(self):
        config, sccs, _ctrl = make_controller()
        sccs[0].array.install(3, 1)
        sccs[0].note_fill(3, ready=50)
        assert sccs[0].inflight_lines() == (3,)
        assert sccs[0].fill_ready_time(3, now=10) == 50
        # Asking after the fill landed forgets the entry.
        assert sccs[0].fill_ready_time(3, now=50) is None
        assert sccs[0].inflight_lines() == ()

    def test_inflight_lines_are_always_resident(self):
        """The invariant stale_inflight() enforces: fills install at
        transaction-grant time, so inflight is a subset of resident."""
        _, sccs, ctrl = make_controller()
        ctrl.access(0, 7, False, 0)
        assert 7 in sccs[0].inflight_lines()
        assert sccs[0].stale_inflight() == ()

    def test_remote_invalidation_drops_inflight(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(0, 7, False, 0)
        assert 7 in sccs[0].inflight_lines()
        ctrl.access(1, 7, True, 2)  # invalidates cluster 0's copy
        assert 7 not in sccs[0].inflight_lines()

    def test_drop_happens_even_without_a_resident_copy(self):
        """Regression: the drop used to be gated on the tag array still
        holding the line, so an entry orphaned by a conflicting install
        survived the invalidation."""
        _, sccs, ctrl = make_controller()
        ctrl.access(0, 7, False, 0)
        sccs[0].array.invalidate(7)  # displace the copy out-of-band
        assert 7 in sccs[0].inflight_lines()
        ctrl.access(1, 7, True, 2)
        assert 7 not in sccs[0].inflight_lines()

    def test_directory_invalidation_drops_inflight_unconditionally(self):
        config = SystemConfig(clusters=2, scc_size=4 * KB,
                              inter_cluster="directory")
        sccs = [SharedClusterCache(config, c) for c in range(2)]
        ctrl = DirectoryController(config, sccs)
        ctrl.access(0, 7, False, 0)
        sccs[0].array.invalidate(7)
        assert 7 in sccs[0].inflight_lines()
        ctrl.access(1, 7, True, 2)
        assert 7 not in sccs[0].inflight_lines()


class TestStaleInflightDetection:
    def test_manufactured_leak_is_reported(self):
        _, sccs, _ctrl = make_controller()
        sccs[0].note_fill(5, ready=100)  # line 5 was never installed
        assert sccs[0].stale_inflight() == (5,)

    def test_check_invariants_flags_the_leak(self):
        config = SystemConfig(clusters=2, scc_size=4 * KB)
        system = MultiprocessorSystem(config)
        system.check_invariants()  # clean machine passes
        system.clusters[1].scc.note_fill(9, ready=100)
        with pytest.raises(AssertionError, match="fill-tracking leak"):
            system.check_invariants()


class TestWriteBufferBound:
    def test_buffered_writes_counts_and_respects_depth(self):
        config = SystemConfig(clusters=1, scc_size=4 * KB,
                              write_buffer_depth=2)
        system = MultiprocessorSystem(config)
        icn = system.clusters[0].scc.interconnect
        assert icn.buffered_writes(0) == 0
        stalled = 0
        now = 0
        for _ in range(6):
            stalled += icn.reserve_write_slot(0, now, now + 40)
            assert icn.buffered_writes(0) <= config.write_buffer_depth
        assert stalled > 0  # a full buffer stalls rather than overflows
