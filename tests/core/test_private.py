"""Tests for the private-cache cluster organization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import INVALID, MODIFIED, SHARED
from repro.core.config import KB, SystemConfig
from repro.core.private import PrivateClusterSystem
from repro.simulation import build_system, run_simulation
from repro.workloads import BarnesHut


def private_config(**overrides):
    defaults = dict(clusters=2, processors_per_cluster=2,
                    scc_size=8 * KB, cluster_organization="private")
    defaults.update(overrides)
    return SystemConfig(**defaults)


class TestConstruction:
    def test_build_system_dispatch(self):
        assert isinstance(build_system(private_config()),
                          PrivateClusterSystem)

    def test_rejects_shared_config(self):
        with pytest.raises(ValueError):
            PrivateClusterSystem(SystemConfig())

    def test_sram_budget_split_evenly(self):
        config = private_config(processors_per_cluster=4,
                                scc_size=32 * KB)
        assert config.private_cache_size == 8 * KB
        system = PrivateClusterSystem(config)
        assert system.caches[0].array.num_lines == 8 * KB // 16


class TestProtocol:
    def test_cold_read_costs_memory_latency(self):
        system = PrivateClusterSystem(private_config())
        complete = system.data_access(0, 0x1000, False, 0)
        # intra snoop finds nothing; global fetch 100 cycles.
        assert complete == 101

    def test_sibling_supplies_faster_than_memory(self):
        """The intra-cluster bus's point: cache-to-cache transfer
        between cluster-mates beats the 100-cycle global fetch."""
        config = private_config()
        system = PrivateClusterSystem(config)
        system.data_access(0, 0x1000, False, 0)
        complete = system.data_access(1, 0x1000, False, 1000)
        assert complete - 1000 <= config.intra_transfer_latency + 2
        assert system.caches[1].array.state(
            config.line_of(0x1000)) == SHARED

    def test_remote_cluster_still_pays_full_latency(self):
        config = private_config()
        system = PrivateClusterSystem(config)
        system.data_access(0, 0x1000, False, 0)
        complete = system.data_access(2, 0x1000, False, 1000)  # cluster 1
        assert complete - 1000 >= config.memory_latency

    def test_sibling_write_invalidates_within_cluster(self):
        """The intra-cluster coherence traffic the shared SCC avoids."""
        config = private_config()
        system = PrivateClusterSystem(config)
        line = config.line_of(0x1000)
        system.data_access(0, 0x1000, False, 0)
        system.data_access(1, 0x1000, False, 200)
        system.data_access(0, 0x1000, True, 400)   # upgrade
        assert system.caches[0].array.state(line) == MODIFIED
        assert system.caches[1].array.state(line) == INVALID
        assert system.intra_invalidations == 1

    def test_modified_sibling_downgrades_on_read(self):
        config = private_config()
        system = PrivateClusterSystem(config)
        line = config.line_of(0x40)
        system.data_access(0, 0x40, True, 0)
        system.data_access(1, 0x40, False, 500)
        assert system.caches[0].array.state(line) == SHARED
        assert system.caches[1].stats.interventions == 1

    def test_write_miss_invalidates_everywhere(self):
        config = private_config()
        system = PrivateClusterSystem(config)
        line = config.line_of(0x80)
        for proc in (0, 1, 2, 3):
            system.data_access(proc, 0x80, False, proc * 200)
        system.data_access(3, 0x80, True, 2000)
        for proc in (0, 1, 2):
            assert system.caches[proc].array.state(line) == INVALID
        assert system.caches[3].array.state(line) == MODIFIED

    def test_writes_do_not_stall(self):
        system = PrivateClusterSystem(private_config())
        assert system.data_access(0, 0x2000, True, 0) == 1

    def test_reread_after_invalidation_is_coherence_miss(self):
        config = private_config()
        system = PrivateClusterSystem(config)
        system.data_access(0, 0x40, False, 0)
        system.data_access(1, 0x40, True, 500)
        system.data_access(0, 0x40, False, 1000)
        assert system.caches[0].stats.coherence_read_misses == 1


class TestInvariants:
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 300),
                              st.booleans()),
                    min_size=1, max_size=250))
    @settings(max_examples=60, deadline=None)
    def test_modified_exclusivity_across_private_caches(self, accesses):
        system = PrivateClusterSystem(private_config(scc_size=4 * KB))
        time = 0
        for proc, line, is_write in accesses:
            system.data_access(proc, line * 16, is_write, time)
            time += 5
        system.check_invariants()

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 300),
                              st.booleans()),
                    min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_invalidations_balance(self, accesses):
        system = PrivateClusterSystem(private_config(scc_size=4 * KB))
        time = 0
        for proc, line, is_write in accesses:
            system.data_access(proc, line * 16, is_write, time)
            time += 5
        stats = system.stats(time)
        sent = sum(s.invalidations_sent for s in stats.scc)
        received = sum(s.invalidations_received for s in stats.scc)
        assert sent == received
        assert system.intra_invalidations <= received


class TestEndToEnd:
    def test_runs_a_real_workload(self):
        config = SystemConfig.paper_parallel(2, 4 * KB).with_updates(
            cluster_organization="private")
        result = run_simulation(config, BarnesHut(n_bodies=64, steps=1))
        assert result.execution_time > 0
        assert result.stats.total_scc.reads > 0

    def test_shared_beats_private_on_shared_data(self):
        """The paper's Section 2.1 argument, end to end."""
        app = BarnesHut(n_bodies=96, steps=2)
        shared = run_simulation(
            SystemConfig.paper_parallel(4, 8 * KB), app)
        private = run_simulation(
            SystemConfig.paper_parallel(4, 8 * KB).with_updates(
                cluster_organization="private"), app)
        assert shared.execution_time < private.execution_time
        assert (shared.stats.total_invalidations
                < private.stats.total_invalidations)
