"""Tests for the MESI protocol option."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bus import SnoopyBus
from repro.core.cache import EXCLUSIVE, INVALID, MODIFIED, SHARED
from repro.core.coherence import CoherenceController
from repro.core.config import KB, SystemConfig
from repro.core.scc import SharedClusterCache
from repro.simulation import run_simulation
from repro.workloads import BarnesHut


def make_controller(protocol="mesi", clusters=4):
    config = SystemConfig(clusters=clusters, scc_size=4 * KB,
                          protocol=protocol)
    sccs = [SharedClusterCache(config, c) for c in range(clusters)]
    return config, sccs, CoherenceController(config, sccs, SnoopyBus())


class TestMesiTransitions:
    def test_lonely_read_installs_exclusive(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(0, 7, False, 0)
        assert sccs[0].array.state(7) == EXCLUSIVE

    def test_second_reader_downgrades_to_shared(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(0, 7, False, 0)
        ctrl.access(1, 7, False, 500)
        assert sccs[0].array.state(7) == SHARED
        assert sccs[1].array.state(7) == SHARED

    def test_exclusive_write_is_a_silent_upgrade(self):
        """The MESI payoff: no bus transaction, no upgrade counted."""
        _, sccs, ctrl = make_controller()
        ctrl.access(0, 7, False, 0)
        bus_before = ctrl.bus.transactions
        outcome = ctrl.access(0, 7, True, 500)
        assert outcome.hit
        assert sccs[0].array.state(7) == MODIFIED
        assert ctrl.bus.transactions == bus_before
        assert sccs[0].stats.upgrades == 0

    def test_shared_write_still_broadcasts(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(0, 7, False, 0)
        ctrl.access(1, 7, False, 500)     # both now SHARED
        ctrl.access(0, 7, True, 1000)
        assert sccs[0].stats.upgrades == 1
        assert sccs[1].array.state(7) == INVALID

    def test_read_miss_to_modified_line_downgrades(self):
        _, sccs, ctrl = make_controller()
        ctrl.access(0, 7, True, 0)        # write miss -> MODIFIED
        ctrl.access(1, 7, False, 500)
        assert sccs[0].array.state(7) == SHARED
        assert sccs[1].stats.interventions == 1

    def test_msi_never_produces_exclusive(self):
        _, sccs, ctrl = make_controller(protocol="msi")
        ctrl.access(0, 7, False, 0)
        assert sccs[0].array.state(7) == SHARED

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 400),
                              st.booleans()),
                    min_size=1, max_size=250))
    @settings(max_examples=80, deadline=None)
    def test_exclusivity_invariant_holds_under_mesi(self, accesses):
        """EXCLUSIVE and MODIFIED lines have no other copy anywhere."""
        _, _, ctrl = make_controller()
        time = 0
        for cluster, line, is_write in accesses:
            ctrl.access(cluster, line, is_write, time)
            time += 7
        assert ctrl.check_exclusivity() is None


class TestMesiEndToEnd:
    def test_mesi_reduces_upgrade_traffic(self):
        """Private (unshared) writes stop broadcasting under MESI."""
        app = BarnesHut(n_bodies=96, steps=2)
        msi = run_simulation(
            SystemConfig.paper_parallel(2, 8 * KB), app)
        mesi = run_simulation(
            SystemConfig.paper_parallel(2, 8 * KB).with_updates(
                protocol="mesi"), app)
        assert (mesi.stats.total_scc.upgrades
                < msi.stats.total_scc.upgrades)
        # Same work either way.
        assert mesi.stats.total_scc.reads == msi.stats.total_scc.reads

    def test_mesi_never_slower(self):
        app = BarnesHut(n_bodies=96, steps=2)
        msi = run_simulation(
            SystemConfig.paper_parallel(2, 8 * KB), app)
        mesi = run_simulation(
            SystemConfig.paper_parallel(2, 8 * KB).with_updates(
                protocol="mesi"), app)
        assert mesi.execution_time <= msi.execution_time * 1.02
