"""Unit tests for the cluster container and processor accounting."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import KB, SystemConfig
from repro.core.processor import ProcessorState


class TestCluster:
    def test_wires_the_right_component_counts(self):
        config = SystemConfig(clusters=2, processors_per_cluster=4)
        cluster = Cluster(config, 1)
        assert len(cluster.processors) == 4
        assert len(cluster.icaches) == 4
        assert cluster.scc.cluster_id == 1

    def test_processor_ids_are_machine_global(self):
        config = SystemConfig(clusters=2, processors_per_cluster=4)
        cluster = Cluster(config, 1)
        assert list(cluster.processor_ids) == [4, 5, 6, 7]
        assert [proc.proc_id for proc in cluster.processors] == [4, 5, 6, 7]

    def test_rejects_out_of_range_cluster(self):
        config = SystemConfig(clusters=2)
        with pytest.raises(ValueError):
            Cluster(config, 2)


class TestProcessorState:
    def test_compute_accounting(self):
        proc = ProcessorState(0, 0)
        proc.account_compute(100)
        assert proc.stats.busy_cycles == 100
        assert proc.stats.instructions == 100

    def test_reference_splits_issue_and_stall(self):
        proc = ProcessorState(0, 0)
        proc.account_reference(issued=10, complete=115)
        assert proc.stats.busy_cycles == 1
        assert proc.stats.memory_stall_cycles == 104
        assert proc.stats.references == 1
        assert proc.finish_time == 115

    def test_single_cycle_reference(self):
        proc = ProcessorState(0, 0)
        proc.account_reference(issued=10, complete=11)
        assert proc.stats.memory_stall_cycles == 0

    def test_rejects_impossible_timing(self):
        proc = ProcessorState(0, 0)
        with pytest.raises(ValueError):
            proc.account_reference(issued=10, complete=10)
        with pytest.raises(ValueError):
            proc.account_compute(-1)
        with pytest.raises(ValueError):
            proc.account_sync_stall(-1)

    def test_ifetch_accounting(self):
        proc = ProcessorState(0, 0)
        proc.account_ifetch(count=8, stall=100)
        assert proc.stats.instructions == 8
        assert proc.stats.busy_cycles == 8
        assert proc.stats.icache_stall_cycles == 100

    def test_total_cycles_sums_all_categories(self):
        proc = ProcessorState(0, 0)
        proc.account_compute(10)
        proc.account_reference(0, 5)
        proc.account_sync_stall(7)
        proc.account_ifetch(4, 3)
        stats = proc.stats
        assert stats.total_cycles == (stats.busy_cycles
                                      + stats.memory_stall_cycles
                                      + stats.sync_stall_cycles
                                      + stats.icache_stall_cycles)
