"""Ablation: SCC line size and inter-cluster false sharing.

Section 2.2.2: "We chose a cache line size of 16 bytes to help reduce
false-sharing between clusters."  This ablation sweeps the line size at
fixed capacity on MP3D -- whose space-cell records put unrelated,
concurrently written data near each other.  Two effects trade off:
longer lines exploit spatial locality within records (miss rate falls),
but past the record size they start coupling *different* cells and
particles into one coherence unit, and invalidation traffic turns back
up -- the false sharing the paper's 16-byte choice caps.
"""

from repro.core.config import KB, SystemConfig
from repro.experiments import render_table
from repro.simulation import run_simulation
from repro.workloads import MP3D

from conftest import run_once

LINE_SIZES = (16, 32, 64, 128)


def test_ablation_line_size(benchmark, save_report):
    app = MP3D(n_particles=600, steps=3)

    def build():
        results = {}
        for line in LINE_SIZES:
            config = SystemConfig.paper_parallel(2, 8 * KB).with_updates(
                line_size=line)
            results[line] = run_simulation(config, app)
        return results

    results = run_once(benchmark, build)

    rows = []
    for line in LINE_SIZES:
        stats = results[line].stats
        rows.append([
            f"{line} B",
            f"{stats.execution_time:,}",
            f"{stats.total_invalidations:,}",
            f"{100 * stats.read_miss_rate:.1f}%",
        ])
    report = render_table(
        "Line size ablation (MP3D, 2 procs/cluster, 64 KB paper-"
        "equivalent SCC)",
        ["line size", "exec time", "invalidations", "read miss rate"],
        rows)
    save_report("ablation_linesize", report)

    # Spatial locality: miss rate falls as lines grow.
    rates = [results[line].stats.read_miss_rate for line in LINE_SIZES]
    assert rates[1] < rates[0]
    # False sharing: past the record size (32-48 B), invalidations turn
    # back up even though each invalidation now covers more bytes.
    invals = {line: results[line].stats.total_invalidations
              for line in LINE_SIZES}
    assert invals[64] > invals[32]
    assert invals[128] > invals[32]
