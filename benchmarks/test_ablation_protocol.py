"""Ablation: MSI (the paper's invalidation scheme) vs MESI.

Section 2.2.2's protocol is plain write-invalidate (MSI over SCCs).
MESI's Exclusive state lets a line that no other cluster holds upgrade
silently on a write, removing the upgrade broadcasts that mostly-private
data generates.  This ablation measures how much of the paper-protocol
bus traffic those silent upgrades eliminate, per workload.
"""

from repro.core.config import KB, SystemConfig
from repro.experiments import render_table
from repro.simulation import run_simulation
from repro.workloads import BarnesHut, MP3D

from conftest import run_once


def test_ablation_protocol(benchmark, save_report):
    apps = {"barnes-hut": BarnesHut(n_bodies=256, steps=2),
            "mp3d": MP3D(n_particles=600, steps=3)}

    def build():
        results = {}
        for name, app in apps.items():
            for protocol in ("msi", "mesi"):
                config = SystemConfig.paper_parallel(
                    2, 8 * KB).with_updates(protocol=protocol)
                results[(name, protocol)] = run_simulation(config, app)
        return results

    results = run_once(benchmark, build)

    rows = []
    for name in apps:
        for protocol in ("msi", "mesi"):
            stats = results[(name, protocol)].stats
            total = stats.total_scc
            rows.append([
                f"{name} / {protocol}",
                f"{stats.execution_time:,}",
                f"{total.upgrades:,}",
                f"{stats.total_invalidations:,}",
            ])
    report = render_table(
        "Coherence protocol ablation (2 procs/cluster, 64 KB paper-"
        "equivalent SCC)",
        ["workload / protocol", "exec time", "upgrades",
         "invalidations"], rows)
    save_report("ablation_protocol", report)

    for name in apps:
        msi = results[(name, "msi")].stats
        mesi = results[(name, "mesi")].stats
        # MESI removes upgrade broadcasts for unshared data...
        assert mesi.total_scc.upgrades < msi.total_scc.upgrades
        # ...without changing what actually gets invalidated much
        # (true sharing still invalidates).
        assert (mesi.total_invalidations
                <= msi.total_invalidations * 1.1 + 50)
        # Performance is never worse.
        assert (results[(name, "mesi")].execution_time
                <= results[(name, "msi")].execution_time * 1.02)
