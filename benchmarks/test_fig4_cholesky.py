"""Figure 4: Cholesky performance characteristics.

Paper shape: Cholesky barely speeds up regardless of cache size --
BCSSTK14's limited concurrency, load imbalance and synchronization
overhead cap the 8-proc self-relative speedup at 3.0 (4 KB) to 3.5
(512 KB); invalidations stay flat with cluster width; and the 32 KB read
miss rate falls roughly 25% from one to eight processors per cluster.
"""

from repro.core.config import KB
from repro.experiments import (PAPER_CHOLESKY_SPEEDUPS, invalidation_series,
                               read_miss_rate_table, render_figure,
                               self_relative_speedup)

from conftest import grid_sweep, run_once


def test_figure4_cholesky(benchmark, profile, cache, cholesky_sweep,
                          save_report, save_figure):
    sweep = run_once(benchmark, lambda: grid_sweep(
        "cholesky", profile, cache))
    report = render_figure("cholesky", sweep)
    small = self_relative_speedup(sweep, 4 * KB)
    large = self_relative_speedup(sweep, 512 * KB)
    rates32 = read_miss_rate_table(sweep, sizes=(32 * KB,))[32 * KB]
    rates_top = read_miss_rate_table(sweep, sizes=(256 * KB,))[256 * KB]
    report += (f"\n8-proc self-relative speedup: {small:.1f} @ 4 KB "
               f"(paper {PAPER_CHOLESKY_SPEEDUPS[4 * KB]}), {large:.1f} @ "
               f"512 KB (paper {PAPER_CHOLESKY_SPEEDUPS[512 * KB]})"
               f"\n32 KB read miss rate 1->8 procs: {rates32[0]:.1f}% -> "
               f"{rates32[3]:.1f}% (paper reports -25% here; in our "
               f"scaled geometry the sharing win appears from ~128 KB up)"
               f"\n256 KB read miss rate 1->8 procs: {rates_top[0]:.1f}% "
               f"-> {rates_top[3]:.1f}%")
    save_report("figure4_cholesky", report)
    from test_fig2_barnes import _save_curve_svg
    from repro.experiments import normalized_execution_times
    _save_curve_svg(save_figure, "figure4_cholesky", "Figure 4: Cholesky",
                    normalized_execution_times(sweep))

    # The defining Cholesky result: poor speedups at every size, only
    # slightly better with large caches.
    assert 1.2 < small < 5.0
    assert 1.2 < large < 5.5
    assert large >= small * 0.9
    # Sharing lowers the miss rate at large SCCs (the paper sees this at
    # 32 KB; our /8-scaled 32 KB has only 256 lines, which 32 processors'
    # active blocks thrash, so the crossover sits higher on our ladder).
    assert rates_top[3] < rates_top[0]
    # Invalidations stay flat with cluster width.
    series = invalidation_series(sweep, 64 * KB)
    assert max(series) < min(series) * 1.6 + 50
