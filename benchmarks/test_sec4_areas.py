"""Section 4: implementation cost model checks.

Verifies the floorplan/area/packaging arithmetic the cost/performance
conclusions rest on: chip areas and ratios, the 64 KB direct-mapped
access-time limit, the crossbar ICN area, and the perimeter-vs-C4
packaging boundary.
"""

import pytest

from repro.cost import (CLUSTER_IMPLEMENTATIONS, access_time_fo4,
                        crossbar_area_mm2, max_direct_mapped_bytes)
from repro.experiments import render_section4_costs

from conftest import run_once


def test_section4_costs(benchmark, save_report):
    report = run_once(benchmark, render_section4_costs)
    save_report("section4_costs", report)

    impls = CLUSTER_IMPLEMENTATIONS
    # The paper's headline area ratios.
    assert impls[2].area_ratio_vs_uniprocessor == pytest.approx(1.37, 0.01)
    assert impls[4].area_ratio_vs_uniprocessor == pytest.approx(1.46, 0.01)
    assert impls[8].area_ratio_vs_uniprocessor == pytest.approx(1.50, 0.01)
    # Every chip fits the economical die.
    for impl in impls.values():
        assert impl.fits_die
        assert impl.overhead_mm2 > 0
    # 64 KB is the largest direct-mapped cache in the 30-FO4 cycle.
    assert access_time_fo4(64 * 1024) == pytest.approx(30.0)
    assert max_direct_mapped_bytes(30) == 64 * 1024
    # The two-processor chip's 3-port x 8-bank crossbar is ~12.1 mm^2.
    assert crossbar_area_mm2(3, 8) == pytest.approx(12.1, abs=0.05)
    # Packaging: perimeter suffices through four processors; the
    # eight-processor block needs C4.
    assert not impls[4].packaging().needs_c4
    assert impls[8].packaging().needs_c4
