"""Table 4: Barnes-Hut read miss rates (prefetching vs interference).

Paper shape: at medium-to-large SCCs the read miss rate falls sharply as
processors are added to a cluster (prefetching); at the small end it
*rises* with cluster width (destructive interference); and invalidations
do not grow with processors per cluster.
"""

from repro.core.config import KB
from repro.experiments import (PAPER_TABLE4, invalidation_series,
                               read_miss_rate_table, render_miss_rates)

from conftest import grid_sweep, run_once


def test_table4_read_miss_rates(benchmark, profile, cache, barnes_sweep,
                                save_report):
    sweep = run_once(benchmark, lambda: grid_sweep(
        "barnes-hut", profile, cache))
    save_report("table4_barnes_missrates",
                render_miss_rates("barnes-hut", sweep, PAPER_TABLE4))

    rates = read_miss_rate_table(sweep, sizes=(4 * KB, 64 * KB, 256 * KB))
    # Medium/large SCC: sharing reduces the read miss rate markedly.
    for size in (64 * KB, 256 * KB):
        one_proc, two_procs, four_procs, eight_procs = rates[size]
        assert two_procs < one_proc
        assert four_procs < one_proc * 0.8
    # Small SCC: destructive interference keeps rates high for wide
    # clusters (no large improvement at 4 KB).
    small = rates[4 * KB]
    assert small[3] > small[0] * 0.5

    # Invalidations do not grow with processors per cluster (Sec 3.1.1).
    for size in (64 * KB, 256 * KB):
        series = invalidation_series(sweep, size)
        assert max(series) < min(series) * 1.5 + 50
