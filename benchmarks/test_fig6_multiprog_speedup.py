"""Figure 6: multiprogramming self-relative speedups.

Paper shape: normalized to the one-processor case per SCC size, the
degradation from ideal speedup is due to interference conflicts alone;
increasing the SCC size reduces the degradation.
"""

from repro.core.config import KB
from repro.experiments import (degradation_factor, figure6_speedups,
                               render_figure6)

from conftest import grid_sweep, run_once


def test_figure6_multiprogramming_speedups(benchmark, profile, cache,
                                           multiprog_sweep, save_report,
                                           save_figure):
    sweep = run_once(benchmark, lambda: grid_sweep(
        "multiprogramming", profile, cache))
    report = render_figure6(sweep)
    deg_small = degradation_factor(sweep, 8 * KB)
    deg_large = degradation_factor(sweep, 512 * KB)
    report += (f"\n8-proc degradation from ideal: {deg_small:.2f}x @ 8 KB"
               f" vs {deg_large:.2f}x @ 512 KB (interference shrinks "
               f"with SCC size)")
    save_report("figure6_multiprogramming_speedups", report)
    from repro.experiments import PROCS_SWEPT, format_size
    table6 = figure6_speedups(sweep)
    series = {format_size(size): list(enumerate(values))
              for size, values in table6.items()
              if size in (4096, 32768, 131072, 524288)}
    save_figure("figure6_multiprogramming_speedups",
                "Figure 6: Multiprogramming self-relative speedups",
                series, [str(p) for p in PROCS_SWEPT],
                y_label="speedup", log_y=False)

    table = figure6_speedups(sweep)
    for size, speedups in table.items():
        # Speedups grow with cluster width but stay below ideal.
        assert speedups[0] == 1.0
        assert 1.0 < speedups[1] <= 2.05
        assert speedups[3] < 8.0
    # Larger SCCs are less degraded (paper's Figure 6 trend), comparing
    # the mid-ladder point against the top.
    assert degradation_factor(sweep, 512 * KB) < \
        degradation_factor(sweep, 8 * KB)
