"""Ablation: SCC banks per processor.

Section 2.2.2 provisions four banks per processor "to provide enough
bandwidth to prevent the SCC from becoming a performance bottleneck".
This ablation sweeps the banking factor on MP3D -- whose concurrent
accesses hit independent random lines, the pattern banking serves --
and measures bank-conflict cycles.  (On Barnes-Hut the conflicts are
mostly *same-line* collisions from cluster-mates walking the tree in
lock-step, which no amount of banking removes -- an observation the
report includes.)
"""

from repro.core.config import KB, SystemConfig
from repro.experiments import render_table
from repro.simulation import run_simulation
from repro.workloads import MP3D, BarnesHut

from conftest import run_once

BANK_FACTORS = (1, 2, 4, 8)


def test_ablation_banks_per_processor(benchmark, save_report):
    mp3d = MP3D(n_particles=600, steps=3)
    barnes = BarnesHut(n_bodies=256, steps=2)

    def build():
        results = {}
        for banks in BANK_FACTORS:
            config = SystemConfig.paper_parallel(8, 8 * KB).with_updates(
                banks_per_processor=banks)
            results[banks] = run_simulation(config, mp3d)
        barnes_results = {}
        for banks in (1, 4):
            config = SystemConfig.paper_parallel(8, 8 * KB).with_updates(
                banks_per_processor=banks)
            barnes_results[banks] = run_simulation(config, barnes)
        return results, barnes_results

    results, barnes_results = run_once(benchmark, build)

    rows = []
    for banks in BANK_FACTORS:
        stats = results[banks].stats
        rows.append([
            f"mp3d / {banks} banks/proc",
            f"{stats.execution_time:,}",
            f"{stats.total_scc.bank_conflict_cycles:,}",
        ])
    for banks in (1, 4):
        stats = barnes_results[banks].stats
        rows.append([
            f"barnes-hut / {banks} banks/proc",
            f"{stats.execution_time:,}",
            f"{stats.total_scc.bank_conflict_cycles:,}",
        ])
    report = render_table(
        "SCC banking ablation (8 procs/cluster, 64 KB paper-equivalent)",
        ["workload / banks", "exec time", "bank-conflict cycles"], rows)
    report += ("\nBarnes-Hut's residual conflicts are same-line "
               "collisions from lock-step traversal; banking cannot "
               "remove those, which is why its conflict count barely "
               "moves.")
    save_report("ablation_banks", report)

    conflicts = {b: results[b].stats.total_scc.bank_conflict_cycles
                 for b in BANK_FACTORS}
    # The paper's four banks per processor remove most of the single-
    # bank conflict cost for independent access streams.
    assert conflicts[4] < conflicts[1] * 0.6
    assert conflicts[2] < conflicts[1]
    # Beyond four, returns diminish (the paper's sizing).
    assert conflicts[8] > conflicts[4] * 0.5
