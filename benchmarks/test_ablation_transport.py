"""Ablation: snoopy bus vs directory as the machine grows.

Section 2.1's opening motivation: "bus performance has not scaled at the
same rate as processor performance ... an inherent limitation of the bus
topology".  Clustering is the paper's answer *within* a bus budget; the
era's other answer was DASH's directory (the paper's reference [13]).
This ablation sweeps the cluster count with both transports: they tie at
the paper's four clusters (validating the bus choice at that scale), and
the directory pulls away as the broadcast bus saturates.
"""

import pytest

from repro.core.config import KB, SystemConfig
from repro.experiments import render_table
from repro.simulation import run_simulation
from repro.workloads import MP3D

from conftest import run_once

CLUSTER_COUNTS = (4, 8, 16)


def test_ablation_transport_scalability(benchmark, save_report):
    app = MP3D(n_particles=600, steps=3)

    def build():
        results = {}
        for clusters in CLUSTER_COUNTS:
            for transport in ("snoopy-bus", "directory"):
                config = SystemConfig(
                    clusters=clusters, processors_per_cluster=2,
                    scc_size=8 * KB, inter_cluster=transport)
                results[(clusters, transport)] = run_simulation(
                    config, app)
        return results

    results = run_once(benchmark, build)

    rows = []
    for clusters in CLUSTER_COUNTS:
        bus_time = results[(clusters, "snoopy-bus")].stats.execution_time
        dir_time = results[(clusters, "directory")].stats.execution_time
        rows.append([
            f"{clusters} clusters ({2 * clusters} procs)",
            f"{bus_time:,}",
            f"{dir_time:,}",
            f"{bus_time / dir_time:.2f}x",
        ])
    report = render_table(
        "Inter-cluster transport ablation (MP3D, 2 procs/cluster, "
        "64 KB paper-equivalent SCCs)",
        ["machine", "snoopy bus", "directory", "directory advantage"],
        rows)
    report += ("\nAt the paper's four clusters the bus is the right "
               "(simpler) choice; the directory's advantage appears "
               "exactly where the paper says the bus topology gives "
               "out.")
    save_report("ablation_transport", report)

    def advantage(clusters):
        return (results[(clusters, "snoopy-bus")].stats.execution_time
                / results[(clusters, "directory")].stats.execution_time)

    # At the paper's scale the two transports are equivalent (within a
    # few percent) -- the bus is not yet the bottleneck.
    assert advantage(4) == pytest.approx(1.0, abs=0.06)
    # The directory's advantage grows with machine size.
    assert advantage(16) > advantage(8) >= advantage(4) * 0.98
    assert advantage(16) > 1.2

