"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper: it runs (or
loads from the on-disk cache) the sweep behind that experiment, prints
the paper-vs-measured report, saves it under ``results/``, and asserts
the qualitative shape the paper claims.  Run with::

    pytest benchmarks/ --benchmark-only -s

Select workload sizing with ``REPRO_PROFILE`` (``paper`` default,
``quick`` for a fast smoke pass).  The first run simulates everything
(minutes at the paper profile); later runs hit the cache.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import (ResultCache, SweepSpec, active_profile,
                               default_cache, run_sweep)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def profile():
    """The active experiment profile (REPRO_PROFILE)."""
    return active_profile()


@pytest.fixture(scope="session")
def cache() -> ResultCache:
    """Shared on-disk result cache."""
    return default_cache()


@pytest.fixture(scope="session")
def save_report():
    """Persist a rendered experiment report under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, report: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(report + "\n")
        print()
        print(report)

    return _save


@pytest.fixture(scope="session")
def save_figure():
    """Persist an SVG figure under results/."""
    from repro.experiments.svgfig import save_svg_chart
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, title: str, series, x_labels, **kwargs):
        return save_svg_chart(RESULTS_DIR / f"{name}.svg", title,
                              series, x_labels, **kwargs)

    return _save


def grid_sweep(benchmark_name: str, profile, cache):
    """One paper grid, resolved through the SweepSpec API."""
    spec = (SweepSpec.multiprogramming(profile=profile)
            if benchmark_name == "multiprogramming"
            else SweepSpec.parallel(benchmark_name, profile=profile))
    return run_sweep(spec, cache=cache)


@pytest.fixture(scope="session")
def barnes_sweep(profile, cache):
    return grid_sweep("barnes-hut", profile, cache)


@pytest.fixture(scope="session")
def mp3d_sweep(profile, cache):
    return grid_sweep("mp3d", profile, cache)


@pytest.fixture(scope="session")
def cholesky_sweep(profile, cache):
    return grid_sweep("cholesky", profile, cache)


@pytest.fixture(scope="session")
def multiprog_sweep(profile, cache):
    return grid_sweep("multiprogramming", profile, cache)


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark's timer.

    Simulation sweeps are deterministic and minutes-scale; repeating
    them for statistics would only re-read the cache.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
