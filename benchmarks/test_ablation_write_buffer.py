"""Ablation: the SCC bank write buffers.

Section 4.3 adds a write buffer to every SCC bank block (part of why a
4 KB bank costs 8 mm^2).  This ablation prices them: with
``stall_on_writes`` the processor waits for every store to complete
(unbuffered sequential consistency); with the buffers, stores retire in
the background and only a full buffer stalls.  Write-miss-heavy
workloads show the benefit.
"""

from repro.core.config import KB, SystemConfig
from repro.experiments import render_table
from repro.simulation import run_simulation
from repro.workloads import Cholesky, MultiprogrammingWorkload

from conftest import run_once


def test_ablation_write_buffer(benchmark, save_report):
    workloads = {
        "cholesky (16 KB paper-eq)": (
            Cholesky(n=288),
            SystemConfig.paper_parallel(2, 2 * KB)),
        "multiprogramming (8 KB paper-eq)": (
            MultiprogrammingWorkload(instructions_per_app=40_000,
                                     quantum_instructions=10_000),
            SystemConfig.paper_multiprogramming(4, 1 * KB).with_updates(
                icache_size=2 * KB)),
    }

    def build():
        results = {}
        for label, (app, config) in workloads.items():
            for buffered in (True, False):
                variant = config.with_updates(
                    stall_on_writes=not buffered)
                results[(label, buffered)] = run_simulation(variant, app)
        return results

    results = run_once(benchmark, build)

    rows = []
    for label in workloads:
        with_buffer = results[(label, True)].stats.execution_time
        without = results[(label, False)].stats.execution_time
        rows.append([
            label,
            f"{with_buffer:,}",
            f"{without:,}",
            f"{100 * (without / with_buffer - 1):.1f}%",
        ])
    report = render_table(
        "Write-buffer ablation (buffered stores vs stall-on-write)",
        ["workload", "with buffers", "stalling writes", "slowdown"],
        rows)
    save_report("ablation_write_buffer", report)

    for label in workloads:
        with_buffer = results[(label, True)].stats.execution_time
        without = results[(label, False)].stats.execution_time
        # Removing the buffers always costs cycles, and measurably so
        # on these write-miss-heavy points (>= 5%).
        assert without > with_buffer
        assert without > with_buffer * 1.05
