"""Ablation: SCC associativity vs the direct-mapped cycle-time choice.

Section 4.2 fixes the caches direct-mapped because 64 KB direct-mapped
is the largest cache accessible in the 30-FO4 cycle.  This ablation
quantifies both sides of that trade on the workload where conflict
misses matter most -- the multiprogramming mix, whose co-scheduled
processes collide in a shared direct-mapped array: higher associativity
removes those conflicts (large cycle-count win) but pushes the access
time past the cycle budget (the cost model's FO4 penalty), which is why
the paper's designs stay direct-mapped.
"""

from repro.core.config import KB, SystemConfig
from repro.cost.sram import access_time_fo4
from repro.experiments import render_table
from repro.simulation import run_simulation
from repro.workloads import MultiprogrammingWorkload

from conftest import run_once

WAYS = (1, 2, 4)


def test_ablation_associativity(benchmark, save_report):
    app = MultiprogrammingWorkload(instructions_per_app=60_000,
                                   quantum_instructions=20_000)
    scc_size = 8 * KB    # paper-equivalent 64 KB

    def build():
        results = {}
        for ways in WAYS:
            config = SystemConfig.paper_multiprogramming(
                4, scc_size).with_updates(associativity=ways,
                                          icache_size=2 * KB)
            results[ways] = run_simulation(config, app)
        return results

    results = run_once(benchmark, build)

    rows = []
    for ways in WAYS:
        stats = results[ways].stats
        fo4 = access_time_fo4(64 * KB, ways)   # paper-scale array
        rows.append([
            f"{ways}-way",
            f"{stats.execution_time:,}",
            f"{100 * stats.total_scc.miss_rate:.1f}%",
            f"{fo4:.1f} FO4",
            "yes" if fo4 <= 30 else "NO",
        ])
    report = render_table(
        "SCC associativity ablation (multiprogramming, 4 procs/cluster, "
        "64 KB paper-equivalent SCC; FO4 column prices the paper-scale "
        "64 KB array)",
        ["ways", "exec time", "miss rate", "access time",
         "fits 30-FO4 cycle"], rows)
    save_report("ablation_associativity", report)

    # Associativity removes the co-scheduled processes' conflict misses
    # and it is a big effect...
    assert (results[2].stats.total_scc.miss_rate
            < results[1].stats.total_scc.miss_rate * 0.75)
    assert results[2].execution_time < results[1].execution_time
    assert results[4].execution_time < results[2].execution_time
    # ...but any associativity pushes the paper's 64 KB array past the
    # 30-FO4 cycle -- the reason Section 4 stays direct-mapped.
    assert access_time_fo4(64 * KB, 1) <= 30.0
    assert access_time_fo4(64 * KB, 2) > 30.0
