"""Figure 5: multiprogramming performance on a single cluster.

Paper shape: execution time improves substantially with SCC size for
every cluster width; the improvement is largest for wide clusters
(paper: a factor of 4.1 for eight processors from 4 KB to 512 KB,
against a smaller factor for one processor).
"""

from repro.core.config import KB
from repro.experiments import (figure5_curves, render_figure5,
                               smallest_to_largest_improvement)

from conftest import grid_sweep, run_once


def test_figure5_multiprogramming(benchmark, profile, cache,
                                  multiprog_sweep, save_report, save_figure):
    sweep = run_once(benchmark, lambda: grid_sweep(
        "multiprogramming", profile, cache))
    improvement8 = smallest_to_largest_improvement(sweep, procs=8)
    improvement1 = smallest_to_largest_improvement(sweep, procs=1)
    report = render_figure5(sweep)
    report += (f"\n8-proc execution time improves {improvement8:.1f}x "
               f"from 4 KB to 512 KB (paper: 4.1x); "
               f"1-proc improves {improvement1:.1f}x")
    save_report("figure5_multiprogramming", report)
    from test_fig2_barnes import _save_curve_svg
    _save_curve_svg(save_figure, "figure5_multiprogramming",
                    "Figure 5: Multiprogramming", figure5_curves(sweep))

    curves = figure5_curves(sweep)
    for procs, series in curves.items():
        times = dict(series)
        assert times[4 * KB] > times[512 * KB]
    # Wide clusters benefit more from cache than narrow ones.
    assert improvement8 > improvement1
    assert improvement8 > 2.0
