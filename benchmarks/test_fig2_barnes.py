"""Figure 2: Barnes-Hut normalized execution time vs SCC size.

Paper shape: execution time falls steeply with SCC size for every
cluster width; more processors per cluster are always faster at the same
SCC size; and medium-to-large SCCs gain the most from sharing.
"""

from repro.core.config import KB
from repro.experiments import normalized_execution_times, render_figure

from conftest import grid_sweep, run_once


def test_figure2_barnes_hut(benchmark, profile, cache, barnes_sweep,
                            save_report, save_figure):
    sweep = run_once(benchmark, lambda: grid_sweep(
        "barnes-hut", profile, cache))
    save_report("figure2_barnes_hut", render_figure("barnes-hut", sweep))

    curves = normalized_execution_times(sweep)
    _save_curve_svg(save_figure, "figure2_barnes_hut",
                    "Figure 2: Barnes-Hut", curves)
    for procs, series in curves.items():
        times = dict(series)
        # Bigger caches help every cluster width (4 KB -> 512 KB).
        assert times[4 * KB] > times[512 * KB]
        # The fall is substantial (the paper's curves span ~an order
        # of magnitude).
        assert times[4 * KB] / times[512 * KB] > 3.0
    # At every size, wider clusters are faster.
    for size in (4 * KB, 64 * KB, 512 * KB):
        assert (sweep[(1, size)].execution_time
                > sweep[(2, size)].execution_time
                > sweep[(8, size)].execution_time)


def _save_curve_svg(save_figure, name, title, curves):
    from repro.experiments import PAPER_LADDER, format_size
    positions = {size: i for i, size in enumerate(PAPER_LADDER)}
    series = {f"{procs} procs/cluster":
              [(positions[size], value) for size, value in points]
              for procs, points in curves.items()}
    labels = [format_size(size).replace(" ", "") for size in PAPER_LADDER]
    save_figure(name, title, series, labels,
                y_label="normalized execution time")
