"""Table 7: MCM cluster comparison (4 procs/64 KB vs 8 procs/128 KB).

Paper shape: the parallel applications roughly double their performance
from the 16- to the 32-processor machine despite the four-cycle loads
(Cholesky excepted), showing the two-processor chip scales as a building
block.
"""

from repro.core.config import KB
from repro.cost.costperf import mcm_table
from repro.experiments import render_table7, surfaces_from_sweeps

from conftest import grid_sweep, run_once


def test_table7_mcm(benchmark, profile, cache, barnes_sweep, mp3d_sweep,
                    cholesky_sweep, multiprog_sweep, save_report):
    def build():
        return {
            name: grid_sweep(name, profile, cache)
            for name in ("barnes-hut", "mp3d", "cholesky",
                         "multiprogramming")
        }

    sweeps = run_once(benchmark, build)
    save_report("table7_mcm", render_table7(sweeps))

    table = mcm_table(surfaces_from_sweeps(sweeps))
    for name in table.benchmarks:
        four_procs, eight_procs = table.row(name)
        # Eight processors per cluster never lose to four.
        assert eight_procs.normalized_time <= four_procs.normalized_time
        if name in ("barnes-hut", "mp3d"):
            # Near-linear scaling 16 -> 32 processors for the scalable
            # parallel codes (paper: ~2x; we accept >=1.3x).
            ratio = four_procs.normalized_time / eight_procs.normalized_time
            assert ratio > 1.3
        if name == "cholesky":
            # Cholesky is the exception: little gain.
            ratio = four_procs.normalized_time / eight_procs.normalized_time
            assert ratio < 1.8
