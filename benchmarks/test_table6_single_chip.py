"""Table 6: single-chip cluster comparison (1 proc/64 KB vs 2 procs/32 KB).

Paper shape: the two-processor chip with half the cache wins on every
benchmark -- by a lot for the parallel codes, narrowly for Cholesky --
and, being only 37% larger, also wins on cost/performance (paper: +24%).
"""

from repro.core.config import KB
from repro.cost.costperf import (cost_performance_gain, single_chip_table)
from repro.experiments import render_table6, surfaces_from_sweeps

from conftest import grid_sweep, run_once


def test_table6_single_chip(benchmark, profile, cache, barnes_sweep,
                            mp3d_sweep, cholesky_sweep, multiprog_sweep,
                            save_report):
    def build():
        return {
            name: grid_sweep(name, profile, cache)
            for name in ("barnes-hut", "mp3d", "cholesky",
                         "multiprogramming")
        }

    sweeps = run_once(benchmark, build)
    save_report("table6_single_chip", render_table6(sweeps))

    table = single_chip_table(surfaces_from_sweeps(sweeps))
    for benchmark_name in table.benchmarks:
        one_proc, two_procs = table.row(benchmark_name)
        # The two-processor cluster wins on every benchmark.
        assert two_procs.normalized_time < one_proc.normalized_time
    # Average speedup is well above the 37% area premium, so
    # cost/performance improves (paper: 70% faster, +24% cost/perf).
    speedup = table.mean_speedup(slower=(1, 64 * KB),
                                 faster=(2, 32 * KB))
    assert speedup > 1.37
    assert cost_performance_gain(speedup) > 0.0
