"""Sensitivity: does the Section 5 verdict survive the latency assumption?

The paper fixes the line-fetch latency at 100 cycles "consistent with
the ratio between processor clock speeds and bus transaction latencies
in the most recent bus-based multiprocessor designs" (Section 2.2.2).
This bench re-runs the single-chip comparison (Table 6's core question:
two processors + 32 KB SCC vs one processor + 64 KB cache) at half and
double that latency, checking the headline conclusion is not an artifact
of the assumption.
"""

from repro.core.config import KB, SystemConfig
from repro.cost.latency import latency_factor
from repro.experiments import render_table
from repro.simulation import run_simulation
from repro.workloads import BarnesHut, MP3D

from conftest import run_once

LATENCIES = (50, 100, 200)


def test_sensitivity_memory_latency(benchmark, save_report):
    apps = {"barnes-hut": BarnesHut(n_bodies=256, steps=2),
            "mp3d": MP3D(n_particles=600, steps=3)}

    def build():
        results = {}
        for name, app in apps.items():
            for latency in LATENCIES:
                overrides = dict(
                    memory_latency=latency,
                    remote_dirty_latency=latency + 35,
                    invalidation_latency=latency + 20)
                one = SystemConfig.paper_parallel(1, 8 * KB).with_updates(
                    **overrides)
                two = SystemConfig.paper_parallel(2, 4 * KB).with_updates(
                    **overrides)
                results[(name, latency, 1)] = run_simulation(one, app)
                results[(name, latency, 2)] = run_simulation(two, app)
        return results

    results = run_once(benchmark, build)

    rows = []
    speedups = {}
    for name in apps:
        for latency in LATENCIES:
            one = results[(name, latency, 1)].stats.execution_time
            two = (results[(name, latency, 2)].stats.execution_time
                   * latency_factor(name, 3))   # 2-proc chip: 3c loads
            speedups[(name, latency)] = one / two
            rows.append([
                f"{name} @ {latency} cycles",
                f"{one:,}",
                f"{two:,.0f}",
                f"{one / two:.2f}x",
            ])
    report = render_table(
        "Latency sensitivity: 1 proc + 64 KB vs 2 procs + 32 KB "
        "(paper-equivalent; latency-corrected)",
        ["workload @ latency", "1P/64KB", "2P/32KB (corr.)",
         "2P advantage"], rows)
    report += ("\nThe two-processor verdict holds from half to double "
               "the paper's 100-cycle assumption.")
    save_report("sensitivity_latency", report)

    # The Section 5 conclusion must hold at every latency.
    for key, speedup in speedups.items():
        assert speedup > 1.0, f"verdict flipped at {key}"
    # And the advantage grows with memory latency (sharing pays more
    # when misses cost more).
    for name in apps:
        assert speedups[(name, 200)] > speedups[(name, 50)] * 0.9
