"""Table 5: relative uniprocessor execution time vs load latency.

The pixstats-equivalent analytic pipeline model, calibrated per
benchmark; this bench verifies it reproduces the paper's table exactly
(to rounding).
"""

import pytest

from repro.cost.latency import (PAPER_LATENCY_MODELS, PAPER_TABLE5,
                                latency_factor)
from repro.experiments import render_table5

from conftest import run_once


def test_table5_load_latency(benchmark, save_report):
    report = run_once(benchmark, render_table5)
    save_report("table5_load_latency", report)
    for name, expected in PAPER_TABLE5.items():
        for latency, value in zip((2, 3, 4), expected):
            assert latency_factor(name, latency) == pytest.approx(
                value, abs=0.005)
    # Longer loads never make a benchmark faster.
    for model in PAPER_LATENCY_MODELS.values():
        assert (model.relative_time(2) <= model.relative_time(3)
                <= model.relative_time(4))
