"""Ablation: shared cluster cache vs private per-processor caches.

Section 2.1 argues for the SCC over the alternative cluster
organization (private caches + intra-cluster snooping bus) on two
grounds: shared data has a single copy (no intra-cluster coherence, and
cluster-mates prefetch for each other), while conceding that independent
processes may prefer private caches (no interference conflicts).  This
ablation holds the per-cluster SRAM budget equal and measures both
claims directly.
"""

from repro.core.config import KB, SystemConfig
from repro.experiments import render_table
from repro.simulation import run_simulation
from repro.workloads import BarnesHut, MultiprogrammingWorkload

from conftest import run_once


def _barnes_pair(scc_size):
    app = BarnesHut(n_bodies=256, steps=2)
    results = {}
    for org in ("shared-scc", "private"):
        config = SystemConfig.paper_parallel(4, scc_size).with_updates(
            cluster_organization=org)
        results[org] = run_simulation(config, app)
    return results


def _multiprog_pair(scc_size):
    app = MultiprogrammingWorkload(instructions_per_app=60_000,
                                   quantum_instructions=20_000)
    results = {}
    for org in ("shared-scc", "private"):
        config = SystemConfig.paper_multiprogramming(
            4, scc_size).with_updates(cluster_organization=org,
                                      icache_size=2 * KB)
        results[org] = run_simulation(config, app)
    return results


def test_ablation_cluster_organization(benchmark, save_report):
    def build():
        return (_barnes_pair(8 * KB), _multiprog_pair(8 * KB))

    barnes, multiprog = run_once(benchmark, build)

    rows = []
    for label, results in (("barnes-hut (parallel)", barnes),
                           ("multiprogramming", multiprog)):
        for org, result in results.items():
            stats = result.stats
            rows.append([
                f"{label} / {org}",
                f"{stats.execution_time:,}",
                f"{100 * stats.total_scc.miss_rate:.1f}%",
                f"{stats.total_invalidations:,}",
            ])
    report = render_table(
        "Cluster organization ablation (equal per-cluster SRAM, "
        "4 procs/cluster, 64 KB-paper-equivalent)",
        ["workload / organization", "exec time", "miss rate",
         "invalidations"], rows)
    save_report("ablation_organization", report)

    # The paper's claim for parallel applications: the shared SCC wins
    # outright -- faster, fewer misses, far less invalidation traffic.
    assert (barnes["shared-scc"].execution_time
            < barnes["private"].execution_time)
    assert (barnes["shared-scc"].stats.total_scc.miss_rate
            < barnes["private"].stats.total_scc.miss_rate)
    assert (barnes["shared-scc"].stats.total_invalidations
            < barnes["private"].stats.total_invalidations)
    # The concession for multiprogramming: private caches avoid the
    # interference conflicts, so the gap narrows (or reverses); the
    # shared SCC must not win by anything like its parallel margin.
    barnes_gain = (barnes["private"].execution_time
                   / barnes["shared-scc"].execution_time)
    multi_gain = (multiprog["private"].execution_time
                  / multiprog["shared-scc"].execution_time)
    assert multi_gain < barnes_gain
