"""Table 3: Barnes-Hut speedups relative to one processor per cluster.

Paper shape: speedups grow with cluster width at every SCC size; at
medium-to-large SCCs sharing is *better than linear* for two processors
per cluster (paper: 2.8-3.2 at 32 KB and up), because cluster-mates
prefetch for each other.
"""

from repro.core.config import KB
from repro.experiments import (PAPER_TABLE3, render_speedups,
                               speedup_table)

from conftest import grid_sweep, run_once


def test_table3_barnes_speedups(benchmark, profile, cache, barnes_sweep,
                                save_report):
    sweep = run_once(benchmark, lambda: grid_sweep(
        "barnes-hut", profile, cache))
    save_report("table3_barnes_speedups",
                render_speedups("barnes-hut", sweep, PAPER_TABLE3))

    table = speedup_table(sweep)
    for size, speedups in table.items():
        # Monotone in cluster width at every size.
        assert speedups[0] == 1.0
        assert speedups[1] > 1.5
        assert speedups[3] > speedups[1]
    # Greater-than-linear speedup for 2 procs/cluster somewhere in the
    # medium-to-large range -- the paper's prefetching headline.
    superlinear = [size for size in (32 * KB, 64 * KB, 128 * KB)
                   if table[size][1] > 2.0]
    assert superlinear, "no superlinear 2-proc speedup at medium SCCs"
    # Eight processors per cluster reach a large speedup at the top end.
    assert table[512 * KB][3] > 5.0
