"""Figure 3: MP3D performance characteristics.

Paper shape: MP3D scales worst of the three parallel applications --
destructive interference caps the small-SCC speedup (paper: 3.8
self-relative at 4 KB) while large SCCs approach linear (paper: 7.2 at
512 KB); invalidation traffic is flat in processors per cluster because
cluster-mates coalesce their updates in the shared SCC.
"""

from repro.core.config import KB
from repro.experiments import (PAPER_MP3D_SPEEDUPS, invalidation_series,
                               render_figure, self_relative_speedup)

from conftest import grid_sweep, run_once


def test_figure3_mp3d(benchmark, profile, cache, mp3d_sweep, save_report, save_figure):
    sweep = run_once(benchmark, lambda: grid_sweep(
        "mp3d", profile, cache))
    report = render_figure("mp3d", sweep)
    small = self_relative_speedup(sweep, 4 * KB)
    large = self_relative_speedup(sweep, 512 * KB)
    report += (f"\n8-proc self-relative speedup: {small:.1f} @ 4 KB "
               f"(paper {PAPER_MP3D_SPEEDUPS[4 * KB]}), {large:.1f} @ "
               f"512 KB (paper {PAPER_MP3D_SPEEDUPS[512 * KB]})")
    save_report("figure3_mp3d", report)
    from test_fig2_barnes import _save_curve_svg
    from repro.experiments import normalized_execution_times
    _save_curve_svg(save_figure, "figure3_mp3d", "Figure 3: MP3D",
                    normalized_execution_times(sweep))

    # Large SCCs scale much better than small ones.
    assert large > small * 1.25
    assert small > 1.5
    assert large > 3.5
    # Invalidations stay flat as processors are added to each cluster.
    for size in (4 * KB, 64 * KB, 512 * KB):
        series = invalidation_series(sweep, size)
        assert max(series) < min(series) * 1.5 + 50
