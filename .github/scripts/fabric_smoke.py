#!/usr/bin/env python3
"""Sweep-fabric smoke test (CI gate).

Boots a real fabric -- broker, worker thread, asyncio HTTP service --
on a fresh on-disk store, then requires

* the grid fetched over HTTP to equal a plain local ``grid_sweep``
  bit-for-bit,
* a second submission of the same grid to be served entirely from the
  store: zero simulator invocations (counted via a hook), zero work
  units, every point a store hit, and
* ``/healthz`` and ``/metrics`` to report the two completed jobs.

Exits non-zero (with a diagnostic) on any violation.  Stdlib plus the
repo itself, so it runs anywhere the simulator does::

    PYTHONPATH=src python .github/scripts/fabric_smoke.py
"""

import json
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro.core.config import KB
from repro.experiments import PROFILES
from repro.experiments.session import grid_sweep
from repro.experiments.spec import SweepSpec
from repro.fabric import (ArtifactStore, Broker, SweepClient, Worker,
                          start_in_thread)


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def count_simulations() -> list:
    """Route every real simulator invocation through a counter."""
    from repro.experiments import runner
    real, calls = runner.run_simulation, []

    def counted(config, application, **kwargs):
        calls.append(type(application).__name__)
        return real(config, application, **kwargs)

    runner.run_simulation = counted
    return calls


def main() -> None:
    spec = SweepSpec.multiprogramming(
        profile=PROFILES["quick"], procs=(1, 2),
        ladder=(4 * KB, 16 * KB, 64 * KB))

    with tempfile.TemporaryDirectory(prefix="fabric-smoke-") as tmp:
        broker = Broker(ArtifactStore(Path(tmp) / "store"))
        stop = threading.Event()
        worker = Worker(broker, worker_id="smoke-worker")
        thread = threading.Thread(target=worker.run,
                                  kwargs={"stop": stop}, daemon=True)
        thread.start()
        url, stop_service = start_in_thread(broker)
        print(f"fabric service on {url}")
        try:
            client = SweepClient.connect(url)

            local = grid_sweep(spec, cache=None)
            cold = client.submit(spec)
            print(f"cold job {cold.job}: {cold.total} points, "
                  f"{cold.pending_units} units")
            remote = client.result(cold, timeout=600.0)
            if set(remote) != set(local):
                fail(f"grids differ: {sorted(remote)} vs {sorted(local)}")
            for point in sorted(local):
                ours, theirs = remote[point], local[point]
                if ours.as_dict() != theirs.as_dict():
                    fail(f"point {point} differs over HTTP:\n"
                         f"  fabric: {ours.as_dict()}\n"
                         f"  local:  {theirs.as_dict()}")
            print(f"HTTP grid identical to local grid_sweep "
                  f"({len(local)} points)")

            calls = count_simulations()
            warm = client.submit(spec)
            client.result(warm, timeout=60.0)
            if calls:
                fail(f"warm resubmission ran {len(calls)} "
                     f"simulations: {calls}")
            if warm.pending_units != 0:
                fail(f"warm resubmission queued {warm.pending_units} "
                     f"work units")
            if warm.store_hits != warm.total:
                fail(f"only {warm.store_hits}/{warm.total} store hits "
                     f"on warm resubmission")
            print(f"warm job {warm.job}: {warm.store_hits}/{warm.total} "
                  f"store hits, 0 simulations")

            with urllib.request.urlopen(url + "/healthz",
                                        timeout=30.0) as response:
                health = json.loads(response.read())
            if not (health.get("ok") and health["jobs"]["total"] == 2):
                fail(f"unhealthy service: {health}")
            with urllib.request.urlopen(url + "/metrics",
                                        timeout=30.0) as response:
                metrics = json.loads(response.read())
            if metrics["counters"].get("fabric.jobs.completed") != 2:
                fail(f"metrics missed a job: {metrics['counters']}")
            print("healthz + metrics report both jobs")
        finally:
            stop.set()
            stop_service()
            thread.join(timeout=10.0)

    print("OK: fabric smoke passed")


if __name__ == "__main__":
    main()
