#!/usr/bin/env python3
"""Kill-and-resume smoke test for the sweep session (CI gate).

Starts a ``--jobs`` sweep, SIGKILLs its whole process group as soon as
the first point is journaled, resumes it with ``--resume``, and
requires

* the resumed run to restore the journaled points instead of
  recomputing them, and
* its final table to equal an uninterrupted run's bit-for-bit.

Exits non-zero (with a diagnostic) on any violation.  Stdlib only, so
it runs anywhere the simulator does::

    PYTHONPATH=src python .github/scripts/resume_smoke.py
"""

import os
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

SWEEP_ARGS = [sys.executable, "-m", "repro", "sweep", "mp3d",
              "--profile", "quick", "--procs", "2",
              "--ladder", "4KB,8KB,16KB,32KB,64KB,128KB",
              "--jobs", "2", "--backoff", "0"]


def _env(workdir: Path) -> dict:
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(workdir / "cache")
    env["REPRO_SESSION_DIR"] = str(workdir / "sessions")
    env["REPRO_TRACE_DIR"] = str(workdir / "traces")
    return env


def _table(output: str) -> str:
    index = output.find("mp3d: sweep points")
    if index < 0:
        sys.exit(f"no sweep table in output:\n{output}")
    return output[index:].strip()


def _summary(output: str) -> dict:
    match = re.search(
        r"points: (\d+) total -- (\d+) computed, (\d+) replayed, "
        r"(\d+) analytical, (\d+) cached, (\d+) journaled, "
        r"(\d+) retries, (\d+) quarantined", output)
    if not match:
        sys.exit(f"no summary line in output:\n{output}")
    keys = ("total", "computed", "replayed", "analytical", "cached",
            "journaled", "retries", "quarantined")
    return dict(zip(keys, map(int, match.groups())))


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="resume-smoke-"))

    print("== start sweep, SIGKILL after the first journaled point")
    process = subprocess.Popen(
        SWEEP_ARGS, env=_env(root / "killed"), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True, bufsize=1,
        start_new_session=True)
    for line in process.stdout:
        print("  " + line.rstrip())
        if "computed" in line and "] procs=" in line:
            os.killpg(process.pid, signal.SIGKILL)
            break
    else:
        sys.exit("sweep finished before it could be killed; "
                 "grow the grid")
    process.wait(timeout=60)
    process.stdout.close()

    print("== resume")
    resumed = subprocess.run(
        SWEEP_ARGS + ["--resume"], env=_env(root / "killed"),
        capture_output=True, text=True, timeout=600)
    print(resumed.stdout)
    if resumed.returncode != 0:
        sys.exit(f"resume failed ({resumed.returncode}):\n"
                 f"{resumed.stderr}")
    counts = _summary(resumed.stdout)
    if counts["journaled"] < 1:
        sys.exit(f"resume restored nothing from the journal: {counts}")
    if counts["computed"] + counts["journaled"] + counts["replayed"] \
            + counts["analytical"] + counts["cached"] != counts["total"]:
        sys.exit(f"resume did not resolve the whole grid: {counts}")
    if counts["quarantined"]:
        sys.exit(f"resume quarantined points: {counts}")

    print("== uninterrupted baseline")
    baseline = subprocess.run(
        SWEEP_ARGS, env=_env(root / "pristine"), capture_output=True,
        text=True, timeout=600)
    if baseline.returncode != 0:
        sys.exit(f"baseline failed ({baseline.returncode}):\n"
                 f"{baseline.stderr}")

    if _table(resumed.stdout) != _table(baseline.stdout):
        sys.exit("resumed table differs from uninterrupted run:\n"
                 f"--- resumed ---\n{_table(resumed.stdout)}\n"
                 f"--- baseline ---\n{_table(baseline.stdout)}")
    print(f"OK: resumed run restored {counts['journaled']} journaled "
          f"point(s), recomputed {counts['computed']}, and matched the "
          f"uninterrupted table bit-for-bit")


if __name__ == "__main__":
    main()
