#!/usr/bin/env python3
"""Design-space optimizer smoke test (CI gate).

Runs a seeded tiny search on the quick profile against a fresh on-disk
cache, then requires

* the search to terminate inside its per-tier point budgets,
* the frontier to contain (or dominate) every paper Section 5
  recommendation, and the quick-grid best cost/performance design --
  the two-processor / 32 KB cluster -- to be rediscovered,
* a bit-identical frontier from a second run with the same seed, and
* that warm rerun to invoke the full-fidelity simulator zero times
  (counted via a hook): the funnel's cache keys make searches and
  sweeps mutually warm.

Exits non-zero (with a diagnostic) on any violation.  Stdlib plus the
repo itself, so it runs anywhere the simulator does::

    PYTHONPATH=src python .github/scripts/optimize_smoke.py
"""

import sys
import tempfile
from pathlib import Path

from repro.core.config import KB
from repro.experiments import PROFILES
from repro.experiments.runner import ResultCache
from repro.optimize import (BudgetLedger, DesignSpace, FunnelEvaluator,
                            optimize, render_frontier)
from repro.optimize.space import PAPER_RECOMMENDATIONS, Candidate

BUDGETS = {"analytical": 256, "fused": 96, "full": 32}


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def count_simulations() -> list:
    """Route every real simulator invocation through a counter."""
    from repro.experiments import runner
    real, calls = runner.run_simulation, []

    def counted(config, application, **kwargs):
        calls.append(type(application).__name__)
        return real(config, application, **kwargs)

    runner.run_simulation = counted
    return calls


def run_search(profile, tmp: Path):
    from repro.trace.record import TraceCache
    space = DesignSpace(profile)
    evaluator = FunnelEvaluator(
        profile, benchmarks=("mp3d",),
        budget=BudgetLedger(dict(BUDGETS)),
        cache=ResultCache(tmp / "results"),
        trace_cache=TraceCache(tmp / "traces"),
        session_dir=tmp / "sessions")
    result = optimize(space, evaluator, seed=0, generations=2,
                      population_size=8, promote=3)
    return result


def frontier_key(result):
    return tuple((p.evaluation.candidate,
                  round(p.evaluation.mean_normalized_time, 12),
                  round(p.evaluation.cost_performance, 12))
                 for p in result.frontier)


def main() -> None:
    profile = PROFILES["quick"]
    calls = count_simulations()

    with tempfile.TemporaryDirectory(prefix="optimize-smoke-") as tmp:
        cold = run_search(profile, Path(tmp))
        cold_calls = len(calls)
        print(render_frontier(cold))
        print(f"\ncold run: {cold_calls} simulator call(s)")

        if cold.stopped_early:
            fail("search did not terminate inside its tier budgets")
        for tier, cap in BUDGETS.items():
            spent = cold.budget[tier]["spent"]
            if spent > cap:
                fail(f"{tier} tier overspent: {spent} > {cap}")

        if not cold.rediscovers_paper():
            fail("frontier neither contains nor dominates the paper's "
                 "Section 5 recommendations")
        priced = {v.candidate for v in cold.verdicts}
        if priced != set(PAPER_RECOMMENDATIONS):
            fail(f"not every recommendation was priced: {priced}")

        best = cold.best
        if best is None:
            fail("search returned no exact evaluations")
        # The quick grid's best paper-plane cost/perf point: the
        # two-processor / 32 KB single-chip cluster must not be beaten
        # by either pure-plane paper design.
        two_p = next(v.evaluation for v in cold.verdicts
                     if v.candidate == Candidate(2, 32 * KB))
        for verdict in cold.verdicts:
            if verdict.candidate == Candidate(2, 32 * KB):
                continue
            if verdict.evaluation.cost_performance \
                    < two_p.cost_performance:
                fail(f"{verdict.candidate.label()} beat the quick "
                     f"grid's best paper design 2p/32KB on "
                     f"cost/performance")

        # Same seed, warm cache: identical frontier, zero simulations.
        calls.clear()
        warm = run_search(profile, Path(tmp))
        if frontier_key(warm) != frontier_key(cold):
            fail("same seed produced a different frontier on rerun")
        if calls:
            fail(f"warm rerun invoked the simulator {len(calls)} "
                 f"time(s): {calls[:5]}")
        print("warm rerun: identical frontier, 0 simulator calls")

    print("OK: seeded search under budget, paper designs rediscovered, "
          "deterministic and cache-warm")


if __name__ == "__main__":
    main()
